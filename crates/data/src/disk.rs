//! Disk-backed page storage with a buffer pool, I/O accounting, and
//! end-to-end checksums.
//!
//! The paper's cost model is page-oriented: transactions live in 4 KB disk
//! pages, segmentation operates on per-page aggregates, and the reported
//! runtimes "include all CPU and I/O costs". This module provides the
//! matching substrate:
//!
//! * [`DiskStoreWriter`] packs a stream of transactions into fixed-size
//!   pages of a data file and appends a sparse per-page aggregate index,
//!   so a later segmentation pass can run **without touching the data
//!   pages at all** — exactly the "higher granularity level" premise of
//!   the page version of segment minimization (Section 4.3);
//! * [`DiskStore`] reads pages back through a small LRU [`BufferPool`],
//!   counting physical page reads and pool hits, which lets experiments
//!   report I/O work the way the paper's time-sharing measurements folded
//!   it into runtime.
//!
//! # Integrity
//!
//! The OSSM is "computed once at pre-processing" (Section 3) and reused
//! across support thresholds, so the page file it derives from is a
//! long-lived artifact: a silently corrupt page would poison every future
//! map. Format **v2** therefore checksums everything with CRC32C — each
//! page slot carries a 4-byte trailer over its payload (verified on every
//! buffer-pool miss), the aggregate index carries a file-level CRC, and
//! the header checksums its own fields. Legacy v1 files (no integrity
//! metadata) are still readable; the writer always emits v2. A page whose
//! checksum fails is quarantined (see [`DiskStore::quarantined_pages`])
//! and the read errors instead of returning garbage; `ossm repair`
//! rebuilds what the intact parts of the file still determine
//! ([`crate::repair`]). See `DESIGN.md` §9 for the full failure model.
//!
//! File layout: see [`crate::format`]. All integers little-endian.

use std::collections::{BTreeSet, HashMap};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::checksum::crc32c;
use crate::fault;
use crate::format::{self, Header, MAX_ITEMS, MAX_PAGE_BYTES};
use crate::item::Itemset;
use crate::page::transaction_bytes;

/// Physical page reads (buffer-pool misses), all [`DiskStore`]s combined.
static PAGE_READS: ossm_obs::Counter = ossm_obs::Counter::new("data.disk.page_reads");
/// Page requests served by a buffer pool, all [`DiskStore`]s combined.
static POOL_HITS: ossm_obs::Counter = ossm_obs::Counter::new("data.disk.pool_hits");
/// Checksum verification failures (pages, index, or header), all stores.
static CHECKSUM_FAILURES: ossm_obs::Counter = ossm_obs::Counter::new("data.disk.checksum_failures");

/// Counts a checksum failure and stamps it into the flight recorder so a
/// postmortem dump shows *which* verification tripped (`value` is the
/// page index, or 0 for header/index failures).
fn checksum_failure(value: u64) {
    CHECKSUM_FAILURES.incr();
    ossm_obs::recorder::record_event(
        "data.disk.checksum_failures",
        ossm_obs::recorder::EventKind::Checksum,
        value,
    );
}

/// Sparse per-page aggregate: transaction count plus (item, support) pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageSummary {
    /// Number of transactions on the page.
    pub transactions: u32,
    /// `(item, support-on-page)` pairs, ascending by item.
    pub supports: Vec<(u32, u32)>,
}

impl PageSummary {
    /// Densifies into a full support vector over `m` items.
    pub fn dense(&self, m: usize) -> Vec<u64> {
        let mut v = vec![0u64; m];
        for &(item, count) in &self.supports {
            v[item as usize] = u64::from(count);
        }
        v
    }
}

/// Writes transactions into a paged data file (format v2, checksummed).
pub struct DiskStoreWriter {
    file: io::BufWriter<std::fs::File>,
    m: u32,
    page_bytes: u32,
    /// Current page under construction.
    current: Vec<Itemset>,
    current_bytes: usize,
    summaries: Vec<PageSummary>,
}

impl DiskStoreWriter {
    /// Creates the file at `path` for a domain of `m` items and the given
    /// *logical* page size (4096 matches the paper; the physical slot adds
    /// a 4-byte checksum trailer). Errors if `page_bytes` cannot hold even
    /// an empty transaction, is implausibly large, or `m` exceeds the
    /// format's domain cap.
    pub fn create(path: &Path, m: usize, page_bytes: usize) -> io::Result<Self> {
        if page_bytes < 16 {
            return Err(invalid_input("page size too small to hold any transaction"));
        }
        if page_bytes > MAX_PAGE_BYTES as usize {
            return Err(invalid_input(format!(
                "page size {page_bytes} exceeds the format cap {MAX_PAGE_BYTES}"
            )));
        }
        if m > MAX_ITEMS {
            return Err(invalid_input(format!(
                "item domain {m} exceeds the format cap {MAX_ITEMS}"
            )));
        }
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        // Header placeholder; finalize() rewrites it with real counts.
        file.write_all(&[0u8; format::HEADER_V2 as usize])?;
        Ok(DiskStoreWriter {
            file,
            m: m as u32,
            page_bytes: page_bytes as u32,
            current: Vec::new(),
            current_bytes: 4, // num_tx header
            summaries: Vec::new(),
        })
    }

    /// Appends one transaction, starting a new page when the current page
    /// is full. Errors if the transaction references items outside the
    /// domain or cannot fit on a page by itself (callers pick
    /// `page_bytes` ≥ the largest transaction).
    pub fn append(&mut self, t: &Itemset) -> io::Result<()> {
        if let Some(max) = t.items().last() {
            if max.0 >= self.m {
                return Err(invalid_input(format!(
                    "item {max} outside domain 0..{}",
                    self.m
                )));
            }
        }
        let cost = transaction_bytes(t);
        if cost + 4 > self.page_bytes as usize {
            return Err(invalid_input(format!(
                "transaction of {cost} bytes exceeds the {}-byte page",
                self.page_bytes
            )));
        }
        if !self.current.is_empty() && self.current_bytes + cost > self.page_bytes as usize {
            self.flush_page()?;
        }
        self.current_bytes += cost;
        self.current.push(t.clone());
        Ok(())
    }

    fn flush_page(&mut self) -> io::Result<()> {
        // `append` already rejected anything that cannot fit.
        let mut slot = format::encode_page_payload(&self.current, self.page_bytes as usize)
            .ok_or_else(|| invalid_input("page overflow"))?;
        let crc = crc32c(&slot);
        slot.extend_from_slice(&crc.to_le_bytes());
        fault::write_all_tagged(&mut self.file, "data.disk.write_page", &slot)?;
        self.summaries.push(format::summarize(&self.current));
        self.current.clear();
        self.current_bytes = 4;
        Ok(())
    }

    /// Flushes the final page, writes the checksummed aggregate index and
    /// the real header, and syncs the file to disk.
    pub fn finalize(mut self) -> io::Result<()> {
        if !self.current.is_empty() {
            self.flush_page()?;
        }
        let num_pages = self.summaries.len() as u64;
        let slot = u64::from(self.page_bytes) + format::PAGE_TRAILER;
        let index_offset = format::HEADER_V2 + num_pages * slot;
        let index = format::encode_index(&self.summaries);
        let index_crc = crc32c(&index);
        fault::write_all_tagged(&mut self.file, "data.disk.write_index", &index)?;
        let mut file = self.file.into_inner()?;
        file.seek(SeekFrom::Start(0))?;
        let header =
            format::encode_header_v2(self.m, self.page_bytes, num_pages, index_offset, index_crc);
        fault::write_all_tagged(&mut file, "data.disk.write_header", &header)?;
        file.sync_all()
    }
}

/// Physical-I/O counters of a [`DiskStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages fetched from disk (buffer-pool misses).
    pub page_reads: u64,
    /// Page requests satisfied by the buffer pool.
    pub pool_hits: u64,
}

/// A fixed-capacity LRU buffer pool of decoded pages.
struct BufferPool {
    capacity: usize,
    /// page id → (decoded transactions, LRU stamp).
    frames: HashMap<u64, (Vec<Itemset>, u64)>,
    clock: u64,
    stats: IoStats,
}

impl BufferPool {
    fn new(capacity: usize) -> Self {
        BufferPool {
            capacity: capacity.max(1),
            frames: HashMap::new(),
            clock: 0,
            stats: IoStats::default(),
        }
    }

    fn get_or_load(
        &mut self,
        page: u64,
        load: impl FnOnce() -> io::Result<Vec<Itemset>>,
    ) -> io::Result<&[Itemset]> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.frames.get_mut(&page) {
            entry.1 = clock;
            self.stats.pool_hits += 1;
            POOL_HITS.incr();
        } else {
            self.stats.page_reads += 1;
            PAGE_READS.incr();
            let decoded = load()?;
            if self.frames.len() >= self.capacity {
                // Evict the least-recently used frame (capacity ≥ 1, so a
                // full pool always has a victim).
                let victim = self
                    .frames
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(k, _)| *k);
                if let Some(victim) = victim {
                    self.frames.remove(&victim);
                }
            }
            self.frames.insert(page, (decoded, clock));
        }
        // The frame was found or inserted just above; surface the
        // impossible miss as an I/O error rather than aborting mid-read.
        match self.frames.get(&page) {
            Some((txs, _)) => Ok(txs.as_slice()),
            None => Err(io::Error::other("buffer pool lost a just-inserted frame")),
        }
    }
}

/// A read handle on a paged data file.
pub struct DiskStore {
    file: std::fs::File,
    header: Header,
    summaries: Vec<PageSummary>,
    pool: BufferPool,
    /// Pages whose checksum failed on read — their data is not trusted.
    quarantined: BTreeSet<usize>,
}

impl DiskStore {
    /// Opens a store written by [`DiskStoreWriter`] (or a legacy v1 file),
    /// with a buffer pool of `pool_pages` frames. Verifies the header and
    /// index checksums up front; data-page checksums are verified lazily
    /// on every buffer-pool miss.
    pub fn open(path: &Path, pool_pages: usize) -> io::Result<Self> {
        let mut file = std::fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        let header = format::read_header(&mut file, file_len)?;
        if !header.header_ok {
            checksum_failure(0);
            return Err(format::bad("page-file header checksum mismatch"));
        }
        // Load the aggregate index (summaries only — no data pages).
        file.seek(SeekFrom::Start(header.index_offset))?;
        let mut index = Vec::with_capacity((file_len - header.index_offset) as usize);
        file.read_to_end(&mut index)?;
        if header.version >= format::V2 && crc32c(&index) != header.index_crc {
            checksum_failure(0);
            return Err(format::bad("page-file index checksum mismatch"));
        }
        let summaries = format::parse_index(&index, header.m, header.num_pages)?;
        Ok(DiskStore {
            file,
            header,
            summaries,
            pool: BufferPool::new(pool_pages),
            quarantined: BTreeSet::new(),
        })
    }

    /// Size of the item domain.
    pub fn num_items(&self) -> usize {
        self.header.m
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.summaries.len()
    }

    /// Format version of the underlying file (2 = checksummed).
    pub fn format_version(&self) -> u32 {
        self.header.version
    }

    /// Total transactions across all pages (from the index).
    pub fn num_transactions(&self) -> u64 {
        self.summaries
            .iter()
            .map(|s| u64::from(s.transactions))
            .sum()
    }

    /// The per-page aggregate index — everything segmentation needs,
    /// loaded without a single data-page read.
    pub fn summaries(&self) -> &[PageSummary] {
        &self.summaries
    }

    /// Dense per-page aggregates for the segmentation algorithms.
    pub fn page_aggregate_vectors(&self) -> Vec<(Vec<u64>, u64)> {
        self.summaries
            .iter()
            .map(|s| (s.dense(self.header.m), u64::from(s.transactions)))
            .collect()
    }

    /// Physical-I/O counters so far.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats
    }

    /// Pages whose checksum verification failed on a read so far. Their
    /// index summaries remain trustworthy (the index has its own CRC),
    /// so bounds built from [`Self::summaries`] stay sound even when the
    /// page data is lost; see [`crate::repair`] for recovery.
    pub fn quarantined_pages(&self) -> impl Iterator<Item = usize> + '_ {
        self.quarantined.iter().copied()
    }

    /// Reads page `p` through the buffer pool, verifying its checksum on
    /// a pool miss. Errors if `p` is out of range or the page is corrupt
    /// (the page is then quarantined rather than returned as garbage).
    pub fn read_page(&mut self, p: usize) -> io::Result<Vec<Itemset>> {
        if p >= self.summaries.len() {
            return Err(invalid_input(format!(
                "page {p} out of range 0..{}",
                self.summaries.len()
            )));
        }
        let offset = self.header.page_offset(p as u64);
        let slot_bytes = self.header.slot_bytes() as usize;
        let payload_bytes = self.header.page_bytes as usize;
        let checksummed = self.header.version >= format::V2;
        let m = self.header.m;
        let file = &mut self.file;
        let quarantined = &mut self.quarantined;
        let txs = self.pool.get_or_load(p as u64, || {
            let mut span = ossm_obs::detail_span("data.disk.read_page");
            span.attach("page", p as u64);
            // Pool-resident page buffers are data.page memory.
            let _mem = ossm_obs::alloc_scope("data.page");
            let mut buf = vec![0u8; slot_bytes];
            file.seek(SeekFrom::Start(offset))?;
            fault::read_exact_tagged(file, "data.disk.read_page", &mut buf)?;
            if checksummed {
                // The slot ends in a 4-byte CRC by construction; a short
                // trailer decodes to a mismatching checksum, not a panic.
                let stored = format::le_u32(&buf[payload_bytes..]);
                if crc32c(&buf[..payload_bytes]) != stored {
                    checksum_failure(p as u64);
                    quarantined.insert(p);
                    return Err(format::bad(format!("page {p} checksum mismatch")));
                }
            }
            format::decode_page(&buf[..payload_bytes], m)
        })?;
        Ok(txs.to_vec())
    }

    /// Streams every transaction through `visit`, page by page. Returns
    /// the number of pages read for the pass.
    pub fn scan(&mut self, mut visit: impl FnMut(&Itemset)) -> io::Result<u64> {
        let mut scan_span = ossm_obs::span("data.disk.scan");
        scan_span.watch(&PAGE_READS);
        scan_span.watch(&POOL_HITS);
        let pages = self.num_pages();
        for p in 0..pages {
            for t in self.read_page(p)? {
                visit(&t);
            }
        }
        Ok(pages as u64)
    }

    /// Materializes the whole store as an in-memory [`crate::Dataset`].
    pub fn to_dataset(&mut self) -> io::Result<crate::Dataset> {
        let n = usize::try_from(self.num_transactions()).unwrap_or(usize::MAX);
        let mut transactions = Vec::with_capacity(n.min(1 << 24));
        self.scan(|t| transactions.push(t.clone()))?;
        Ok(crate::Dataset::new(self.header.m, transactions))
    }
}

fn invalid_input(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg.into())
}

/// Writes an entire dataset to a paged file (convenience wrapper).
pub fn write_paged(path: &Path, dataset: &crate::Dataset, page_bytes: usize) -> io::Result<()> {
    let mut w = DiskStoreWriter::create(path, dataset.num_items(), page_bytes)?;
    for t in dataset.transactions() {
        w.append(t)?;
    }
    w.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::QuestConfig;
    use crate::page::PageStore;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ossm-disk-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn sample_dataset() -> crate::Dataset {
        QuestConfig {
            num_transactions: 500,
            num_items: 50,
            ..QuestConfig::small()
        }
        .generate()
    }

    /// Serializes a dataset in the legacy v1 layout (36-byte header, raw
    /// page slots, no checksums) so compatibility stays tested after the
    /// writer moved to v2.
    pub(crate) fn write_paged_v1(path: &Path, dataset: &crate::Dataset, page_bytes: usize) {
        let mem = PageStore::pack(dataset.clone(), page_bytes);
        let mut pages: Vec<Vec<u8>> = Vec::new();
        let mut summaries = Vec::new();
        for page in mem.pages() {
            let txs = &dataset.transactions()[page.range()];
            let payload = format::encode_page_payload(txs, page_bytes).expect("fits");
            summaries.push(format::summarize(txs));
            pages.push(payload);
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(format::MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(dataset.num_items() as u32).to_le_bytes());
        bytes.extend_from_slice(&(page_bytes as u32).to_le_bytes());
        bytes.extend_from_slice(&(pages.len() as u64).to_le_bytes());
        let index_offset = format::HEADER_V1 + pages.len() as u64 * page_bytes as u64;
        bytes.extend_from_slice(&index_offset.to_le_bytes());
        for p in &pages {
            bytes.extend_from_slice(p);
        }
        bytes.extend_from_slice(&format::encode_index(&summaries));
        std::fs::write(path, bytes).expect("write v1 file");
    }

    #[test]
    fn roundtrip_preserves_every_transaction() {
        let d = sample_dataset();
        let path = tmp("roundtrip.pages");
        write_paged(&path, &d, 4096).expect("write");
        let mut store = DiskStore::open(&path, 4).expect("open");
        assert_eq!(store.num_items(), 50);
        assert_eq!(store.num_transactions(), 500);
        assert_eq!(store.format_version(), 2);
        assert_eq!(store.to_dataset().expect("read"), d);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_files_still_read() {
        let d = sample_dataset();
        let path = tmp("legacy.pages");
        write_paged_v1(&path, &d, 1024);
        let mut store = DiskStore::open(&path, 4).expect("open v1");
        assert_eq!(store.format_version(), 1);
        assert_eq!(store.num_transactions(), 500);
        assert_eq!(store.to_dataset().expect("read"), d);
        // v1 page boundaries agree with the in-memory packer, like v2's.
        let mem = PageStore::pack(d, 1024);
        assert_eq!(store.num_pages(), mem.num_pages());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn index_matches_in_memory_page_aggregates() {
        let d = sample_dataset();
        let path = tmp("index.pages");
        write_paged(&path, &d, 1024).expect("write");
        let store = DiskStore::open(&path, 2).expect("open");
        // The same packing in memory must agree page by page: the v2
        // checksum trailer lives outside the logical page, so packing
        // decisions are unchanged.
        let mem = PageStore::pack(d, 1024);
        assert_eq!(store.num_pages(), mem.num_pages());
        for (summary, page) in store.summaries().iter().zip(mem.pages()) {
            assert_eq!(summary.transactions as usize, page.len());
            assert_eq!(summary.dense(50), page.supports());
        }
        // Reading the index costs zero data-page I/O.
        assert_eq!(store.io_stats(), IoStats::default());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn buffer_pool_counts_hits_and_misses() {
        let d = sample_dataset();
        let path = tmp("pool.pages");
        write_paged(&path, &d, 1024).expect("write");
        let mut store = DiskStore::open(&path, 2).expect("open");
        store.read_page(0).expect("read");
        store.read_page(0).expect("read");
        assert_eq!(
            store.io_stats(),
            IoStats {
                page_reads: 1,
                pool_hits: 1
            }
        );
        // Touch enough pages to evict page 0 (capacity 2).
        store.read_page(1).expect("read");
        store.read_page(2).expect("read");
        store.read_page(0).expect("read");
        assert_eq!(
            store.io_stats().page_reads,
            4,
            "page 0 was evicted and re-read"
        );
    }

    #[test]
    fn full_scans_cost_one_read_per_page_when_pool_is_small() {
        let d = sample_dataset();
        let path = tmp("scan.pages");
        write_paged(&path, &d, 1024).expect("write");
        let mut store = DiskStore::open(&path, 1).expect("open");
        let p = store.num_pages() as u64;
        let mut seen = 0u64;
        store.scan(|_| seen += 1).expect("scan");
        store.scan(|_| ()).expect("scan");
        assert_eq!(seen, 500);
        assert_eq!(
            store.io_stats().page_reads,
            2 * p,
            "tiny pool → every pass hits disk"
        );
        // A pool bigger than the file caches the second pass entirely.
        let mut cached = DiskStore::open(&path, p as usize + 1).expect("open");
        cached.scan(|_| ()).expect("scan");
        cached.scan(|_| ()).expect("scan");
        assert_eq!(cached.io_stats().page_reads, p);
        assert_eq!(cached.io_stats().pool_hits, p);
    }

    #[test]
    fn rejects_corrupt_files() {
        let path = tmp("corrupt.pages");
        std::fs::write(&path, b"garbage that is long enough to be a header maybe").expect("write");
        assert!(DiskStore::open(&path, 1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_transaction_is_rejected() {
        let path = tmp("oversize.pages");
        let mut w = DiskStoreWriter::create(&path, 100, 16).expect("create");
        let t = Itemset::new(0..50u32);
        let err = w.append(&t).expect_err("does not fit");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("exceeds the"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_domain_items_and_bad_page_sizes_are_errors_not_panics() {
        let path = tmp("domain.pages");
        assert!(DiskStoreWriter::create(&path, 10, 4).is_err());
        let mut w = DiskStoreWriter::create(&path, 10, 4096).expect("create");
        let err = w
            .append(&Itemset::new([3, 99]))
            .expect_err("item 99 ∉ 0..10");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reading_out_of_range_pages_is_an_error() {
        let d = sample_dataset();
        let path = tmp("range.pages");
        write_paged(&path, &d, 4096).expect("write");
        let mut store = DiskStore::open(&path, 1).expect("open");
        let past_end = store.num_pages();
        assert!(store.read_page(past_end).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_in_a_page_is_detected_and_quarantined() {
        let d = sample_dataset();
        let path = tmp("flip.pages");
        write_paged(&path, &d, 1024).expect("write");
        let mut bytes = std::fs::read(&path).expect("read file");
        // Flip one bit in the middle of page 1's payload.
        let slot = 1024 + 4;
        let offset = format::HEADER_V2 as usize + slot + 100;
        bytes[offset] ^= 0x10;
        std::fs::write(&path, &bytes).expect("rewrite");
        let mut store = DiskStore::open(&path, 4).expect("header+index intact");
        store.read_page(0).expect("page 0 clean");
        let err = store.read_page(1).expect_err("page 1 corrupt");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        assert_eq!(store.quarantined_pages().collect::<Vec<_>>(), vec![1]);
        // The index summary for the quarantined page is still served.
        assert!(store.summaries()[1].transactions > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_in_header_or_index_is_detected_at_open() {
        let d = sample_dataset();
        let path = tmp("flip-meta.pages");
        write_paged(&path, &d, 1024).expect("write");
        let clean = std::fs::read(&path).expect("read file");
        // Header: flip a bit inside the checksummed fixed fields.
        let mut bytes = clean.clone();
        bytes[21] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(DiskStore::open(&path, 1).is_err(), "header flip detected");
        // Index: flip a bit in the trailing index region.
        let mut bytes = clean.clone();
        let at = clean.len() - 3;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        let err = DiskStore::open(&path, 1)
            .map(|_| ())
            .expect_err("index flip detected");
        assert!(err.to_string().contains("index checksum"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hostile_header_fields_error_instead_of_allocating() {
        let path = tmp("hostile.pages");
        // A header claiming 2^40 pages over a 100-byte file.
        let header = format::encode_header_v2(50, 4096, 1 << 40, u64::MAX / 2, 0);
        std::fs::write(&path, header).expect("write");
        let err = DiskStore::open(&path, 1)
            .map(|_| ())
            .expect_err("implausible header");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // An implausible item domain is capped too.
        let header = format::encode_header_v2(u32::MAX, 4096, 0, format::HEADER_V2, 0);
        std::fs::write(&path, header).expect("write");
        assert!(DiskStore::open(&path, 1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let path = tmp("empty.pages");
        write_paged(&path, &crate::Dataset::empty(10), 4096).expect("write");
        let mut store = DiskStore::open(&path, 1).expect("open");
        assert_eq!(store.num_pages(), 0);
        assert_eq!(store.to_dataset().expect("read"), crate::Dataset::empty(10));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "faults")]
    mod faults {
        use super::*;
        use crate::fault::FaultPlan;

        #[test]
        fn torn_page_write_is_detected_on_read_back() {
            let _lock = crate::fault::tests::serialize_tests();
            let d = sample_dataset();
            let path = tmp("torn.pages");
            // Tear the second page write halfway through its slot.
            let mut plan = FaultPlan::new();
            plan.tear_write("data.disk.write_page", 2, 300);
            let guard = plan.arm();
            let err = write_paged(&path, &d, 1024).expect_err("torn write surfaces");
            assert!(err.to_string().contains("torn"), "{err}");
            assert_eq!(guard.fired(), 1);
            drop(guard);
            // The half-written file must not open as a valid store.
            assert!(DiskStore::open(&path, 1).is_err());
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn injected_read_corruption_trips_the_page_checksum() {
            let _lock = crate::fault::tests::serialize_tests();
            let d = sample_dataset();
            let path = tmp("flip-read.pages");
            write_paged(&path, &d, 1024).expect("write");
            let mut store = DiskStore::open(&path, 4).expect("open");
            let mut plan = FaultPlan::new();
            plan.flip_on_read("data.disk.read_page", 1, 42, 0x04);
            let guard = plan.arm();
            let err = store.read_page(0).expect_err("flip detected");
            assert!(err.to_string().contains("checksum"), "{err}");
            assert_eq!(guard.fired(), 1);
            drop(guard);
            std::fs::remove_file(&path).ok();
        }
    }
}
