//! Incremental OSSM maintenance — appending data without resegmenting.
//!
//! The OSSM's precursor, the SSM, was built for *online* mining (the Carma
//! case study [10] in the paper's related work), where transactions keep
//! arriving. This module extends the OSSM the same way: new pages are
//! folded into an existing map without re-running segmentation from
//! scratch. Each arriving aggregate either
//!
//! 1. opens a fresh segment, if the map is below its segment budget, or
//! 2. merges into the live segment with the smallest equation-(2) merge
//!    loss — the same criterion RC/Greedy optimize at build time.
//!
//! The result is never better than a full rebuild (the builder can always
//! reshuffle history), but it is sound by construction — bounds stay upper
//! bounds because aggregates only ever add — and the maintenance cost per
//! page is one loss scan, O(n · k log k).

use ossm_data::{Itemset, PageStore};

use crate::loss::LossCalculator;
use crate::segmentation::Aggregate;
use crate::ssm::Ossm;

/// Error from [`IncrementalOssm::new`]: a segment budget of zero cannot
/// hold any aggregate, so no sound map could ever be snapshotted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZeroSegmentBudget;

impl std::fmt::Display for ZeroSegmentBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("an OSSM needs a segment budget of at least one")
    }
}

impl std::error::Error for ZeroSegmentBudget {}

/// An OSSM that accepts appended pages.
#[derive(Clone, Debug)]
pub struct IncrementalOssm {
    segments: Vec<Aggregate>,
    max_segments: usize,
    calc: LossCalculator,
    appended_pages: u64,
}

impl IncrementalOssm {
    /// Starts an empty map with a segment budget. Errors if the budget is
    /// zero.
    pub fn new(max_segments: usize, calc: LossCalculator) -> Result<Self, ZeroSegmentBudget> {
        if max_segments == 0 {
            return Err(ZeroSegmentBudget);
        }
        Ok(IncrementalOssm {
            segments: Vec::new(),
            max_segments,
            calc,
            appended_pages: 0,
        })
    }

    /// Seeds the map from an already-built OSSM (e.g. from
    /// [`crate::builder::OssmBuilder`]); subsequent appends fold into its
    /// segments.
    pub fn from_ossm(ossm: &Ossm, max_segments: usize, calc: LossCalculator) -> Self {
        assert!(
            max_segments >= ossm.num_segments(),
            "budget must cover the seed OSSM's segments"
        );
        IncrementalOssm {
            segments: ossm.segments().to_vec(),
            max_segments,
            calc,
            appended_pages: 0,
        }
    }

    /// Number of live segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Pages appended since construction/seeding.
    pub fn appended_pages(&self) -> u64 {
        self.appended_pages
    }

    /// Appends one page-aggregate.
    // SOUND: either grows a fresh segment with the exact page aggregate
    // or folds it into a live one via `merge_in` (pointwise sum) — the
    // loss heuristic only picks *which* segment absorbs the page, never
    // alters a support.
    pub fn append_aggregate(&mut self, aggregate: Aggregate) {
        self.appended_pages += 1;
        if self.segments.len() < self.max_segments {
            self.segments.push(aggregate);
            return;
        }
        // Merge into the closest live segment (smallest eq. 2 loss, ties to
        // the lowest index for determinism).
        let mut best = (u64::MAX, 0usize);
        for (i, seg) in self.segments.iter().enumerate() {
            let loss = self.calc.merge_loss(seg, &aggregate);
            if loss < best.0 {
                best = (loss, i);
            }
        }
        self.segments[best.1].merge_in(&aggregate);
    }

    /// Appends a batch of transactions as one aggregate (one logical page).
    pub fn append_transactions<'a>(
        &mut self,
        num_items: usize,
        transactions: impl IntoIterator<Item = &'a Itemset>,
    ) {
        // SOUND: exact aggregation — each transaction increments its
        // items' supports exactly once, so the page aggregate is exact.
        let mut supports = vec![0u64; num_items];
        let mut count = 0u64;
        for t in transactions {
            count += 1;
            for item in t.items() {
                supports[item.index()] += 1;
            }
        }
        self.append_aggregate(Aggregate::new(supports, count));
    }

    /// Appends every page of a store.
    pub fn append_store(&mut self, store: &PageStore) {
        for agg in Aggregate::from_pages(store) {
            self.append_aggregate(agg);
        }
    }

    /// Snapshots the current map for querying/filtering.
    ///
    /// # Panics
    /// Panics if nothing has been appended yet.
    pub fn snapshot(&self) -> Ossm {
        Ossm::from_aggregates(self.segments.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossm_data::gen::SkewedConfig;
    use ossm_data::Dataset;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    #[test]
    fn fills_budget_before_merging() {
        let mut inc = IncrementalOssm::new(3, LossCalculator::all_items()).expect("budget > 0");
        for i in 0..3u64 {
            inc.append_aggregate(Aggregate::new(vec![i, 3 - i], 3));
            assert_eq!(inc.num_segments(), i as usize + 1);
        }
        inc.append_aggregate(Aggregate::new(vec![5, 0], 5));
        assert_eq!(inc.num_segments(), 3, "budget caps segment growth");
        assert_eq!(inc.appended_pages(), 4);
    }

    #[test]
    fn merges_into_the_matching_configuration() {
        let mut inc = IncrementalOssm::new(2, LossCalculator::all_items()).expect("budget > 0");
        inc.append_aggregate(Aggregate::new(vec![10, 1], 10)); // config (0,1)
        inc.append_aggregate(Aggregate::new(vec![1, 10], 10)); // config (1,0)
                                                               // A new (0,1)-shaped page must fold into segment 0 (zero loss).
        inc.append_aggregate(Aggregate::new(vec![6, 2], 6));
        let snap = inc.snapshot();
        assert_eq!(snap.segments()[0].supports(), &[16, 3]);
        assert_eq!(snap.segments()[1].supports(), &[1, 10]);
    }

    #[test]
    fn snapshot_bounds_stay_sound_under_streaming() {
        // Stream a seasonal dataset page by page; at every checkpoint the
        // snapshot's bound must dominate the true support of the data seen
        // so far.
        let d = SkewedConfig {
            num_transactions: 600,
            num_items: 12,
            ..SkewedConfig::small()
        }
        .generate();
        let mut inc = IncrementalOssm::new(5, LossCalculator::all_items()).expect("budget > 0");
        let chunk = 50;
        let probe = set(&[0, 1]);
        let probe2 = set(&[2, 5, 7]);
        for (i, chunk_tx) in d.transactions().chunks(chunk).enumerate() {
            inc.append_transactions(12, chunk_tx);
            let seen = Dataset::new(
                12,
                d.transactions()[..(i + 1) * chunk.min(d.len())].to_vec(),
            );
            let snap = inc.snapshot();
            assert!(snap.upper_bound(&probe) >= seen.support(&probe));
            assert!(snap.upper_bound(&probe2) >= seen.support(&probe2));
            assert_eq!(snap.num_transactions(), seen.len() as u64);
        }
    }

    #[test]
    fn seeding_from_built_ossm_extends_it() {
        let d = SkewedConfig {
            num_transactions: 400,
            num_items: 10,
            ..SkewedConfig::small()
        }
        .generate();
        let store = ossm_data::PageStore::with_page_count(d, 8);
        let (ossm, _) = crate::builder::OssmBuilder::new(4).build(&store);
        let mut inc = IncrementalOssm::from_ossm(&ossm, 4, LossCalculator::all_items());
        assert_eq!(inc.num_segments(), 4);
        inc.append_aggregate(Aggregate::new(vec![1; 10], 1));
        let snap = inc.snapshot();
        assert_eq!(snap.num_transactions(), ossm.num_transactions() + 1);
        assert_eq!(snap.num_segments(), 4);
    }

    #[test]
    #[should_panic(expected = "budget must cover")]
    fn seed_larger_than_budget_is_rejected() {
        let segs = vec![Aggregate::new(vec![1], 1), Aggregate::new(vec![2], 2)];
        let ossm = Ossm::from_aggregates(segs);
        IncrementalOssm::from_ossm(&ossm, 1, LossCalculator::all_items());
    }

    #[test]
    fn incremental_quality_close_to_rebuild() {
        // Streaming assignment loses at most what the Random builder loses
        // is not guaranteed — but it should never be catastrophically worse
        // than putting everything in one segment.
        let d = SkewedConfig {
            num_transactions: 800,
            num_items: 15,
            ..SkewedConfig::small()
        }
        .generate();
        let store = ossm_data::PageStore::with_page_count(d, 16);
        let calc = LossCalculator::all_items();
        let mut inc = IncrementalOssm::new(4, calc).expect("budget > 0");
        inc.append_store(&store);
        // Compare bound tightness against the degenerate one-segment map:
        // streaming with a 4-segment budget must never be looser.
        let aggs = Aggregate::from_pages(&store);
        let snap = inc.snapshot();
        let single = Ossm::from_aggregates(vec![aggs
            .iter()
            .skip(1)
            .fold(aggs[0].clone(), |acc, a| acc.merged(a))]);
        let probe = set(&[0, 1]);
        assert!(snap.upper_bound(&probe) <= single.upper_bound(&probe));
    }
}
