//! Ring behavior of the flight recorder (live build only).
//!
//! Each integration-test file is its own binary, so the process-global
//! ring here is written by these tests and nothing else. A mutex still
//! serializes them, because they all reason about deltas of the single
//! global event stream.
#![cfg(feature = "enabled")]

use std::sync::Mutex;

use ossm_obs::recorder::{self, EventKind, RecordedEvent, CAPACITY};

static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn ring_wraps_and_keeps_the_newest_capacity_events() {
    const EXTRA: usize = 50;
    let _guard = SERIAL.lock().unwrap();
    for i in 0..(CAPACITY + EXTRA) as u64 {
        recorder::record_event("test.wrap", EventKind::Counter, i);
    }
    let total = recorder::total_recorded();
    let events = recorder::events();

    assert_eq!(
        events.len(),
        CAPACITY,
        "once wrapped, the ring holds exactly CAPACITY events"
    );
    // The snapshot is the newest-CAPACITY window, contiguous and ordered
    // oldest-first — nothing torn, nothing duplicated.
    assert_eq!(events.first().unwrap().seq, total - CAPACITY as u64);
    assert_eq!(events.last().unwrap().seq, total - 1);
    for pair in events.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1, "seqs are contiguous");
    }
    // We wrote the last CAPACITY + EXTRA events, so the whole window is
    // ours and the first EXTRA payloads have been overwritten.
    for e in &events {
        assert_eq!(e.name, "test.wrap");
        assert_eq!(e.kind, EventKind::Counter);
    }
    assert_eq!(events.first().unwrap().value, EXTRA as u64);
    assert_eq!(events.last().unwrap().value, (CAPACITY + EXTRA - 1) as u64);
}

#[test]
fn concurrent_writers_never_lose_or_duplicate_tickets() {
    const PER_THREAD: usize = 600;
    let _guard = SERIAL.lock().unwrap();
    for threads in [1usize, 2, 8] {
        let before = recorder::total_recorded();
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let payload = (t * PER_THREAD + i) as u64;
                        recorder::record_event("test.mt", EventKind::Worker, payload);
                    }
                });
            }
        });
        assert_eq!(
            recorder::total_recorded(),
            before + (threads * PER_THREAD) as u64,
            "every writer claimed a unique ticket ({threads} threads)"
        );

        let events = recorder::events();
        for pair in events.windows(2) {
            assert!(pair[1].seq > pair[0].seq, "snapshot seqs strictly increase");
        }
        // Every surviving event from this round is intact: payloads were
        // globally unique per round, so any duplicate means a torn slot
        // leaked through validation.
        let survivors: Vec<&RecordedEvent> = events
            .iter()
            .filter(|e| e.seq >= before && e.name == "test.mt")
            .collect();
        assert!(!survivors.is_empty());
        let mut payloads: Vec<u64> = survivors.iter().map(|e| e.value).collect();
        payloads.sort_unstable();
        payloads.dedup();
        assert_eq!(payloads.len(), survivors.len(), "no duplicated payloads");
        let writer_ids: std::collections::BTreeSet<u64> =
            survivors.iter().map(|e| e.thread).collect();
        assert!(
            writer_ids.len() <= threads,
            "at most {threads} distinct writer threads, saw {writer_ids:?}"
        );
    }
}

#[test]
fn snapshots_taken_during_writes_stay_internally_consistent() {
    let _guard = SERIAL.lock().unwrap();
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                for i in 0..20_000u64 {
                    recorder::record_event("test.race", EventKind::Counter, i);
                }
            });
        }
        // Read while the ring is being overwritten underneath us: slots
        // caught mid-write must be skipped, never surfaced half-updated.
        for _ in 0..100 {
            let events = recorder::events();
            assert!(events.len() <= CAPACITY);
            for pair in events.windows(2) {
                assert!(
                    pair[1].seq > pair[0].seq,
                    "a torn slot must be skipped, never decoded"
                );
            }
            for e in &events {
                assert!(e.seq < recorder::total_recorded());
            }
        }
    });
}

#[test]
fn dump_round_trips_through_the_timeline_renderer() {
    let _guard = SERIAL.lock().unwrap();
    recorder::record_event("test.dump", EventKind::WalAppend, 96);
    let path = std::env::temp_dir()
        .join("ossm-obs-tests")
        .join("recorder-dump.jsonl");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    recorder::dump_to(&path).expect("dump");

    let content = std::fs::read_to_string(&path).expect("read dump");
    let header = content.lines().next().expect("header line");
    assert!(header.contains("\"type\":\"ossm-flightrec\""), "{header}");
    assert!(header.contains("\"version\":1"), "{header}");
    let last = content.lines().last().expect("event lines");
    assert!(
        last.contains("\"kind\":\"wal-append\"") && last.contains("test.dump"),
        "the dump ends on the newest event: {last}"
    );

    let timeline = recorder::render_timeline(&content).expect("dump parses");
    assert!(timeline.starts_with("flight recorder timeline ("));
    assert!(timeline.contains("test.dump"), "{timeline}");
    assert!(timeline.contains("value=96"), "{timeline}");
    std::fs::remove_file(&path).ok();
}
