//! Additional property tests: counting back-ends, persistence codecs,
//! episode/sequence semantics, and the generators' structural invariants.

mod testkit;

use rand::rngs::StdRng;
use rand::Rng;
use testkit::{case_rng, mask_itemset, random_dataset};

use ossm_data::{Dataset, Itemset};

const CASES: u64 = 64;

fn dataset(rng: &mut StdRng) -> Dataset {
    random_dataset(rng, 2, 10, 0, 50, true)
}

#[test]
fn hash_tree_always_matches_linear_counting() {
    for case in 0..CASES {
        let mut rng = case_rng(0x5051, case);
        let d = dataset(&mut rng);
        let m = d.num_items();
        let num_cands = rng.gen_range(1usize..30);
        let candidates: Vec<Itemset> = (0..num_cands)
            .map(|_| {
                let mask = rng.gen_range(1u32..1024);
                Itemset::new((0..m as u32).filter(|&i| mask & (1 << i) != 0))
            })
            .filter(|c| !c.is_empty())
            .collect();
        if candidates.is_empty() {
            continue;
        }
        assert_eq!(
            ossm_mining::hashtree::count_hash_tree(d.transactions(), &candidates),
            ossm_mining::support::count_linear(d.transactions(), &candidates),
            "case {case}"
        );
    }
}

#[test]
fn flat_codec_roundtrips() {
    for case in 0..CASES {
        let d = dataset(&mut case_rng(0x5052, case));
        let mut buf = Vec::new();
        ossm_data::io::write_dataset(&mut buf, &d).expect("write");
        let back = ossm_data::io::read_dataset(&mut buf.as_slice()).expect("read");
        assert_eq!(back, d, "case {case}");
    }
}

#[test]
fn paged_codec_roundtrips_and_indexes_correctly() {
    let dir = std::env::temp_dir().join("ossm-proptest-pages");
    std::fs::create_dir_all(&dir).expect("temp dir");
    for case in 0..CASES {
        let d = dataset(&mut case_rng(0x5053, case));
        let path = dir.join(format!("pt-{}-{case}.pages", std::process::id()));
        ossm_data::disk::write_paged(&path, &d, 256).expect("write");
        let mut store = ossm_data::disk::DiskStore::open(&path, 3).expect("open");
        assert_eq!(store.num_transactions(), d.len() as u64, "case {case}");
        // The sparse index must reproduce the dataset's singleton supports.
        let mut totals = vec![0u64; d.num_items()];
        for s in store.summaries() {
            for &(item, count) in &s.supports {
                totals[item as usize] += u64::from(count);
            }
        }
        assert_eq!(totals, d.singleton_supports(), "case {case}");
        assert_eq!(store.to_dataset().expect("read"), d, "case {case}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn ossm_persistence_roundtrips() {
    for case in 0..CASES {
        let d = dataset(&mut case_rng(0x5054, case));
        if d.is_empty() {
            continue;
        }
        let min = ossm_core::minimize_segments(&d);
        let mut buf = Vec::new();
        ossm_core::persist::write_ossm(&mut buf, &min.ossm).expect("write");
        let back = ossm_core::persist::read_ossm(&mut buf.as_slice()).expect("read");
        assert_eq!(back, min.ossm, "case {case}");
    }
}

#[test]
fn serial_episode_containment_matches_brute_force() {
    use ossm_mining::SerialEpisode;
    // Brute force: is `episode` a subsequence of `window`?
    fn is_subsequence(needle: &[u32], hay: &[u32]) -> bool {
        let mut it = hay.iter();
        needle.iter().all(|n| it.any(|h| h == n))
    }
    for case in 0..CASES {
        let mut rng = case_rng(0x5055, case);
        let window: Vec<u32> = (0..rng.gen_range(0usize..12))
            .map(|_| rng.gen_range(0u32..5))
            .collect();
        let episode: Vec<u32> = (0..rng.gen_range(1usize..5))
            .map(|_| rng.gen_range(0u32..5))
            .collect();
        let e = SerialEpisode::new(episode.clone());
        assert_eq!(
            e.occurs_in(&window),
            is_subsequence(&episode, &window),
            "case {case}"
        );
    }
}

#[test]
fn sequence_pattern_support_is_antitone_under_extension() {
    use ossm_mining::{SequenceDb, SequencePattern};
    for case in 0..CASES {
        let mut rng = case_rng(0x5056, case);
        let masks: Vec<Vec<u32>> = (0..rng.gen_range(1usize..15))
            .map(|_| {
                (0..rng.gen_range(1usize..5))
                    .map(|_| rng.gen_range(1u32..64))
                    .collect()
            })
            .collect();
        let ext = rng.gen_range(0u32..6);
        let to_sets = |seq: &Vec<u32>| -> Vec<Itemset> {
            seq.iter().map(|&mask| mask_itemset(6, mask)).collect()
        };
        let db = SequenceDb::new(6, masks.iter().map(to_sets).collect());
        let base = SequencePattern::new(vec![Itemset::singleton(ossm_data::ItemId(ext))]);
        let extended = SequencePattern::new(vec![
            Itemset::singleton(ossm_data::ItemId(ext)),
            Itemset::singleton(ossm_data::ItemId((ext + 1) % 6)),
        ]);
        assert!(db.support(&extended) <= db.support(&base), "case {case}");
        // Union-set bound sanity: support never exceeds the union dataset's
        // support of the pattern's items.
        let union = db.union_dataset();
        assert!(
            db.support(&extended) <= union.support(&extended.union_items()),
            "case {case}"
        );
    }
}

#[test]
fn windowing_preserves_event_mass() {
    use ossm_data::sequence::{Event, EventSequence};
    for case in 0..CASES {
        let mut rng = case_rng(0x5057, case);
        let times: Vec<u64> = (0..rng.gen_range(0usize..60))
            .map(|_| rng.gen_range(0u64..200))
            .collect();
        let width = rng.gen_range(1u64..20);
        let events: Vec<Event> = times
            .iter()
            .map(|&t| Event {
                time: t,
                kind: (t % 7) as u32,
            })
            .collect();
        let n = events.len();
        let seq = EventSequence::new(7, events);
        // Tumbling windows: every event lands in exactly one window, so
        // summed window sizes (with multiplicity collapsed per kind) never
        // exceed the event count, and each event's kind is present in its
        // window.
        let d = seq.windows(width, width);
        let total_kinds: usize = d.transactions().iter().map(Itemset::len).sum();
        assert!(total_kinds <= n.max(1), "case {case}");
        if n > 0 {
            let occupied: usize = d.transactions().iter().filter(|t| !t.is_empty()).count();
            assert!(occupied >= 1, "case {case}");
        }
    }
}

#[test]
fn generator_outputs_always_fit_their_domain() {
    for seed in 0u64..50 {
        use ossm_data::gen::{AlarmConfig, QuestConfig, SkewedConfig};
        let q = QuestConfig {
            num_transactions: 60,
            num_items: 15,
            seed,
            ..QuestConfig::small()
        }
        .generate();
        assert_eq!(q.num_items(), 15);
        assert!(
            q.transactions().iter().all(|t| !t.is_empty()),
            "seed {seed}"
        );
        let s = SkewedConfig {
            num_transactions: 60,
            num_items: 15,
            seed,
            ..SkewedConfig::small()
        }
        .generate();
        assert_eq!(s.len(), 60);
        let a = AlarmConfig {
            num_windows: 60,
            num_alarm_types: 15,
            seed,
            ..AlarmConfig::small()
        }
        .generate();
        assert_eq!(a.len(), 60);
    }
}

#[test]
fn closed_and_maximal_are_consistent() {
    for case in 0..CASES {
        let d = dataset(&mut case_rng(0x5058, case));
        if d.is_empty() {
            continue;
        }
        let min_support = (d.len() as u64 / 4).max(1);
        let full = ossm_mining::Apriori::new().mine(&d, min_support).patterns;
        let closed = ossm_mining::patterns::closed(&full);
        let maximal = ossm_mining::patterns::maximal(&full);
        // maximal ⊆ closed ⊆ full, and closed reconstructs every support.
        for p in &maximal {
            assert!(closed.contains(p), "case {case}");
        }
        for (p, s) in full.iter() {
            assert_eq!(
                ossm_mining::patterns::support_from_closed(&closed, p),
                Some(s),
                "case {case}"
            );
        }
    }
}
