//! Items and itemsets.
//!
//! The paper works over a domain of `m` individual items (atomic patterns).
//! We identify items by dense integer ids `0..m`, which is both what the
//! IBM Quest generator produces and what lets the OSSM use direct addressing
//! ("no searching involved", Section 3 of the paper).

use std::fmt;

/// Identifier of a single item (atomic pattern) in the domain `0..m`.
///
/// Item ids double as the *canonical enumeration* used to break support
/// ties in segment configurations (footnote 4 of the paper): smaller id
/// wins ties.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The id as a `usize` index, for direct addressing into support vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

/// A set of items, stored as a sorted, duplicate-free vector of ids.
///
/// This is the representation of both transactions ("market baskets") and
/// candidate patterns. Sortedness makes subset testing a linear merge and
/// gives every itemset a unique canonical form, which the Apriori join
/// (prefix match on the first `k-1` items) relies on.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Itemset {
    items: Vec<ItemId>,
}

impl Itemset {
    /// The empty itemset.
    pub fn empty() -> Self {
        Itemset { items: Vec::new() }
    }

    /// Builds an itemset from arbitrary ids: sorts and deduplicates.
    pub fn new<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        let mut items: Vec<ItemId> = ids.into_iter().map(ItemId).collect();
        items.sort_unstable();
        items.dedup();
        Itemset { items }
    }

    /// Builds an itemset from a vector that is already sorted and unique.
    ///
    /// # Panics
    /// In debug builds, panics if the input is not strictly increasing.
    pub fn from_sorted(items: Vec<ItemId>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly increasing"
        );
        Itemset { items }
    }

    /// A singleton itemset `{item}`.
    pub fn singleton(item: ItemId) -> Self {
        Itemset { items: vec![item] }
    }

    /// Number of items (the itemset's cardinality, `k` in `k`-itemset).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the itemset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items in increasing id order.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Whether `item` is a member (binary search).
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Whether `self ⊆ other`, by a linear merge over the two sorted lists.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        is_sorted_subset(&self.items, &other.items)
    }

    /// Whether `self ⊆ other` where `other` is a sorted slice of ids.
    pub fn is_subset_of_slice(&self, other: &[ItemId]) -> bool {
        is_sorted_subset(&self.items, other)
    }

    /// Union of two itemsets.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut items = Vec::with_capacity(self.items.len() + other.items.len());
        let (mut a, mut b) = (self.items.iter().peekable(), other.items.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    if x < y {
                        items.push(x);
                        a.next();
                    } else if y < x {
                        items.push(y);
                        b.next();
                    } else {
                        items.push(x);
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    items.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    items.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        Itemset { items }
    }

    /// The itemset with `item` added (no-op if already present).
    pub fn with(&self, item: ItemId) -> Itemset {
        match self.items.binary_search(&item) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut items = Vec::with_capacity(self.items.len() + 1);
                items.extend_from_slice(&self.items[..pos]);
                items.push(item);
                items.extend_from_slice(&self.items[pos..]);
                Itemset { items }
            }
        }
    }

    /// The itemset with `item` removed (no-op if absent).
    pub fn without(&self, item: ItemId) -> Itemset {
        match self.items.binary_search(&item) {
            Ok(pos) => {
                let mut items = self.items.clone();
                items.remove(pos);
                Itemset { items }
            }
            Err(_) => self.clone(),
        }
    }

    /// All `(k-1)`-subsets of this `k`-itemset, i.e. one per dropped item.
    ///
    /// Used by the Apriori prune step: a candidate is viable only if all its
    /// maximal proper subsets were frequent at the previous level.
    pub fn proper_subsets(&self) -> impl Iterator<Item = Itemset> + '_ {
        (0..self.items.len()).map(move |drop| {
            let mut items = Vec::with_capacity(self.items.len() - 1);
            items.extend_from_slice(&self.items[..drop]);
            items.extend_from_slice(&self.items[drop + 1..]);
            Itemset { items }
        })
    }

    /// Apriori join: if `self` and `other` are `k`-itemsets sharing their
    /// first `k-1` items, returns the `(k+1)`-itemset union; otherwise `None`.
    pub fn apriori_join(&self, other: &Itemset) -> Option<Itemset> {
        let k = self.items.len();
        if k == 0 || other.items.len() != k {
            return None;
        }
        if self.items[..k - 1] != other.items[..k - 1] {
            return None;
        }
        let (last_a, last_b) = (self.items[k - 1], other.items[k - 1]);
        if last_a >= last_b {
            return None;
        }
        let mut items = Vec::with_capacity(k + 1);
        items.extend_from_slice(&self.items);
        items.push(last_b);
        Some(Itemset { items })
    }
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{it}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<u32> for Itemset {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Itemset::new(iter)
    }
}

/// `a ⊆ b` for strictly increasing slices, by linear merge.
fn is_sorted_subset(a: &[ItemId], b: &[ItemId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = 0;
    'outer: for &x in a {
        while bi < b.len() {
            if b[bi] == x {
                bi += 1;
                continue 'outer;
            }
            if b[bi] > x {
                return false;
            }
            bi += 1;
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = set(&[3, 1, 2, 3, 1]);
        assert_eq!(s.items(), &[ItemId(1), ItemId(2), ItemId(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_set_properties() {
        let e = Itemset::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_subset_of(&set(&[1, 2])));
        assert!(!e.contains(ItemId(0)));
    }

    #[test]
    fn contains_uses_membership() {
        let s = set(&[1, 5, 9]);
        assert!(s.contains(ItemId(5)));
        assert!(!s.contains(ItemId(4)));
        assert!(!s.contains(ItemId(10)));
    }

    #[test]
    fn subset_relation() {
        assert!(set(&[1, 3]).is_subset_of(&set(&[1, 2, 3])));
        assert!(!set(&[1, 4]).is_subset_of(&set(&[1, 2, 3])));
        assert!(set(&[]).is_subset_of(&set(&[])));
        assert!(!set(&[1, 2, 3]).is_subset_of(&set(&[1, 2])));
        assert!(set(&[2]).is_subset_of(&set(&[0, 1, 2])));
    }

    #[test]
    fn union_merges() {
        assert_eq!(set(&[1, 3]).union(&set(&[2, 3, 5])), set(&[1, 2, 3, 5]));
        assert_eq!(set(&[]).union(&set(&[7])), set(&[7]));
    }

    #[test]
    fn with_and_without() {
        let s = set(&[1, 3]);
        assert_eq!(s.with(ItemId(2)), set(&[1, 2, 3]));
        assert_eq!(s.with(ItemId(3)), s);
        assert_eq!(s.without(ItemId(1)), set(&[3]));
        assert_eq!(s.without(ItemId(2)), s);
    }

    #[test]
    fn proper_subsets_of_triple() {
        let s = set(&[1, 2, 3]);
        let subs: Vec<Itemset> = s.proper_subsets().collect();
        assert_eq!(subs, vec![set(&[2, 3]), set(&[1, 3]), set(&[1, 2])]);
    }

    #[test]
    fn apriori_join_requires_shared_prefix() {
        assert_eq!(
            set(&[1, 2]).apriori_join(&set(&[1, 3])),
            Some(set(&[1, 2, 3]))
        );
        assert_eq!(
            set(&[1, 3]).apriori_join(&set(&[1, 2])),
            None,
            "join only in order"
        );
        assert_eq!(
            set(&[1, 2]).apriori_join(&set(&[2, 3])),
            None,
            "prefix differs"
        );
        assert_eq!(set(&[1]).apriori_join(&set(&[2])), Some(set(&[1, 2])));
        assert_eq!(Itemset::empty().apriori_join(&Itemset::empty()), None);
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", set(&[1, 2])), "{1,2}");
        assert_eq!(format!("{:?}", ItemId(4)), "i4");
    }
}
