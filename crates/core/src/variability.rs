//! Segment-variability analysis.
//!
//! Beyond pruning, the paper's conclusion notes the OSSM "also provides
//! direct information about the variability of frequencies in different
//! segments of the transactions" — the map is a profile of how non-uniform
//! the data is, which is precisely what makes it effective ("the more
//! skewed the data, the more effective the OSSM is", Section 3). This
//! module turns an [`Ossm`] into that profile:
//!
//! * per-item variability: how unevenly each item's support spreads over
//!   the segments (coefficient of variation of its *rates*);
//! * a whole-map skew score: the average of the per-item scores, weighted
//!   by support — near 0 for uniform data, large for seasonal/bursty data;
//! * the segment-configuration census: how many distinct configurations
//!   the final segments realize.
//!
//! The skew score also answers the Figure 7 recipe's "is the data skewed?"
//! question from data instead of judgement — see [`VariabilityReport::is_skewed`].

use ossm_data::ItemId;

use crate::config::Configuration;
use crate::ssm::Ossm;

/// Variability profile of an OSSM.
#[derive(Clone, Debug)]
pub struct VariabilityReport {
    /// Coefficient of variation of each item's per-segment support *rate*
    /// (support divided by segment size), indexed by item. Items with zero
    /// total support score 0.
    pub item_cv: Vec<f64>,
    /// Support-weighted mean of `item_cv` — the map's overall skew score.
    pub skew_score: f64,
    /// Number of distinct configurations among the final segments.
    pub distinct_configurations: usize,
    /// Number of segments profiled.
    pub num_segments: usize,
}

impl VariabilityReport {
    /// Default skewness verdict for the Figure 7 recipe: seasonal/bursty
    /// data lands well above this; i.i.d. data well below (the threshold
    /// is calibrated in this module's tests against the three generators).
    pub const SKEW_THRESHOLD: f64 = 0.35;

    /// Whether the data should count as "skewed" for the recipe.
    pub fn is_skewed(&self) -> bool {
        self.skew_score >= Self::SKEW_THRESHOLD
    }

    /// The `k` items with the most inter-segment variability.
    pub fn most_variable_items(&self, k: usize) -> Vec<(ItemId, f64)> {
        let mut idx: Vec<usize> = (0..self.item_cv.len()).collect();
        idx.sort_by(|&a, &b| {
            self.item_cv[b]
                .partial_cmp(&self.item_cv[a])
                .expect("CVs are finite")
        });
        idx.into_iter()
            .take(k)
            .map(|i| (ItemId(i as u32), self.item_cv[i]))
            .collect()
    }
}

/// Profiles an OSSM (see module docs).
///
/// # Panics
/// Panics if the map covers zero transactions.
pub fn analyze(ossm: &Ossm) -> VariabilityReport {
    let n_total = ossm.num_transactions();
    assert!(n_total > 0, "cannot profile an empty map");
    let m = ossm.num_items();
    let n = ossm.num_segments();
    let mut item_cv = vec![0.0f64; m];
    let mut weighted = 0.0f64;
    let mut weight_total = 0.0f64;
    for (i, cv_slot) in item_cv.iter_mut().enumerate() {
        // Per-segment occurrence rate of item i.
        let rates: Vec<f64> = ossm
            .segments()
            .iter()
            .map(|s| {
                if s.transactions() == 0 {
                    0.0
                } else {
                    s.supports()[i] as f64 / s.transactions() as f64
                }
            })
            .collect();
        let total_support: u64 = ossm.segments().iter().map(|s| s.supports()[i]).sum();
        if total_support == 0 || n < 2 {
            continue;
        }
        let mean = rates.iter().sum::<f64>() / n as f64;
        if mean <= 0.0 {
            continue;
        }
        let var = rates.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        *cv_slot = cv;
        let w = total_support as f64;
        weighted += cv * w;
        weight_total += w;
    }
    let skew_score = if weight_total > 0.0 {
        weighted / weight_total
    } else {
        0.0
    };
    let mut configs = std::collections::BTreeSet::new();
    for s in ossm.segments() {
        configs.insert(Configuration::of_supports(s.supports()));
    }
    VariabilityReport {
        item_cv,
        skew_score,
        distinct_configurations: configs.len(),
        num_segments: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OssmBuilder;
    use crate::segmentation::Aggregate;
    use ossm_data::gen::{QuestConfig, SkewedConfig};
    use ossm_data::PageStore;

    #[test]
    fn uniform_segments_score_zero() {
        let seg = Aggregate::new(vec![10, 5, 2], 20);
        let ossm = Ossm::from_aggregates(vec![seg.clone(), seg.clone(), seg]);
        let report = analyze(&ossm);
        assert!(
            report.skew_score < 1e-9,
            "identical segments have no variability"
        );
        assert_eq!(report.distinct_configurations, 1);
        assert!(!report.is_skewed());
    }

    #[test]
    fn seasonal_segments_score_high() {
        // Item 0 only in segment A, item 1 only in segment B.
        let a = Aggregate::new(vec![20, 0], 20);
        let b = Aggregate::new(vec![0, 20], 20);
        let report = analyze(&Ossm::from_aggregates(vec![a, b]));
        assert!(report.skew_score > 0.9, "score {}", report.skew_score);
        assert!(report.is_skewed());
        assert_eq!(report.distinct_configurations, 2);
        let top = report.most_variable_items(1);
        assert!(top[0].1 > 0.9);
    }

    #[test]
    fn skew_threshold_separates_the_paper_generators() {
        let score = |ossm: &Ossm| analyze(ossm).skew_score;
        // i.i.d. Quest data → low score.
        let regular = QuestConfig {
            num_transactions: 2000,
            num_items: 60,
            ..QuestConfig::small()
        }
        .generate();
        let store = PageStore::with_page_count(regular, 20);
        let (ossm_r, _) = OssmBuilder::new(10).build(&store);
        // Seasonal data → high score.
        let skewed = SkewedConfig {
            num_transactions: 2000,
            num_items: 60,
            season_boost: 10.0,
            ..SkewedConfig::small()
        }
        .generate();
        let store = PageStore::with_page_count(skewed, 20);
        let (ossm_s, _) = OssmBuilder::new(10).build(&store);
        let (r, s) = (score(&ossm_r), score(&ossm_s));
        assert!(r < VariabilityReport::SKEW_THRESHOLD, "regular scored {r}");
        assert!(s > VariabilityReport::SKEW_THRESHOLD, "skewed scored {s}");
        assert!(
            s > 2.0 * r,
            "want clear separation: regular {r}, skewed {s}"
        );
        assert!(analyze(&ossm_s).is_skewed());
        assert!(!analyze(&ossm_r).is_skewed());
    }

    #[test]
    fn single_segment_has_no_variability() {
        let ossm = Ossm::from_aggregates(vec![Aggregate::new(vec![3, 1], 5)]);
        let report = analyze(&ossm);
        assert_eq!(report.skew_score, 0.0);
        assert_eq!(report.num_segments, 1);
    }

    #[test]
    #[should_panic(expected = "empty map")]
    fn empty_map_is_rejected() {
        analyze(&Ossm::from_aggregates(vec![Aggregate::zero(3)]));
    }
}
