//! The generalized OSSM of the paper's footnote 3.
//!
//! "An alternative way to tighten `ub(X, SSM_n)` is to generalize the OSSM
//! by storing not only the actual segment supports of singleton patterns
//! or itemsets, but also those of itemsets of higher cardinalities."
//!
//! A [`GeneralizedOssm`] carries, on top of the per-segment singleton
//! supports, the *exact* per-segment supports of a chosen set of tracked
//! itemsets (typically pairs of bubble-list items — the candidates whose
//! bounds matter most). The bound per segment becomes
//!
//! ```text
//! bound_s(X) = min( min_{a ∈ X} sup_s({a}),  min_{T tracked, T ⊆ X} sup_s(T) )
//! ```
//!
//! which is never looser than equation (1), because `sup_s(T) ≤
//! sup_s({a})` for every `a ∈ T ⊆ X`. Space grows by one counter row per
//! tracked itemset — the same linear trade the paper makes for segments.

use std::collections::BTreeMap;

use ossm_data::{Itemset, PageStore};

use crate::segmentation::Segmentation;
use crate::ssm::Ossm;

/// An OSSM augmented with per-segment supports of selected itemsets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneralizedOssm {
    base: Ossm,
    /// Tracked itemset → per-segment exact supports (len = num segments).
    tracked: BTreeMap<Itemset, Vec<u64>>,
}

impl GeneralizedOssm {
    /// Builds the generalized map over `store`'s pages, tracking the exact
    /// per-segment supports of each itemset in `tracked` (singletons and
    /// empty itemsets are ignored — the base map already covers them).
    pub fn from_pages(
        store: &PageStore,
        segmentation: &Segmentation,
        tracked: impl IntoIterator<Item = Itemset>,
    ) -> Self {
        let base = Ossm::from_pages(store, segmentation);
        let n = segmentation.num_segments();
        let mut map: BTreeMap<Itemset, Vec<u64>> = tracked
            .into_iter()
            .filter(|t| t.len() >= 2)
            .map(|t| (t, vec![0u64; n]))
            .collect();
        if !map.is_empty() {
            let assignment = segmentation.assignment();
            for (page_idx, page) in store.pages().iter().enumerate() {
                let seg = assignment[page_idx];
                for t in store.page_transactions(page_idx) {
                    for (pattern, counts) in &mut map {
                        if pattern.is_subset_of(t) {
                            counts[seg] += 1;
                        }
                    }
                }
                let _ = page;
            }
        }
        GeneralizedOssm { base, tracked: map }
    }

    /// The underlying singleton-only OSSM.
    pub fn base(&self) -> &Ossm {
        &self.base
    }

    /// Number of tracked higher-cardinality itemsets.
    pub fn num_tracked(&self) -> usize {
        self.tracked.len()
    }

    /// The tightened upper bound (see module docs). Never looser than
    /// `self.base().upper_bound(pattern)`, and exact for tracked patterns.
    pub fn upper_bound(&self, pattern: &Itemset) -> u64 {
        if pattern.is_empty() {
            return self.base.num_transactions();
        }
        // Tracked subsets of `pattern` (including pattern itself).
        let relevant: Vec<&Vec<u64>> = self
            .tracked
            .iter()
            .filter(|(t, _)| t.is_subset_of(pattern))
            .map(|(_, counts)| counts)
            .collect();
        let mut total = 0u64;
        for (s, seg) in self.base.segments().iter().enumerate() {
            let sup = seg.supports();
            let mut min = u64::MAX;
            for item in pattern.items() {
                min = min.min(sup[item.index()]);
            }
            for counts in &relevant {
                min = min.min(counts[s]);
            }
            total += min;
        }
        total
    }

    /// Whether `pattern` can be pruned at `min_support`.
    pub fn prunes(&self, pattern: &Itemset, min_support: u64) -> bool {
        self.upper_bound(pattern) < min_support
    }

    /// Approximate memory footprint: base map plus one row per tracked set.
    pub fn memory_bytes(&self) -> usize {
        self.base.memory_bytes()
            + self.tracked.len() * self.base.num_segments() * std::mem::size_of::<u64>()
    }
}

/// The natural tracking choice: all pairs of bubble-list items, whose
/// bounds sit closest to the threshold (footnote 3 meets Section 5.3).
pub fn bubble_pairs(bubble: &crate::bubble::BubbleList) -> Vec<Itemset> {
    let items = bubble.items();
    let mut out = Vec::with_capacity(items.len() * items.len().saturating_sub(1) / 2);
    for (i, &a) in items.iter().enumerate() {
        for &b in &items[i + 1..] {
            out.push(Itemset::new([a, b]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bubble::BubbleList;
    use ossm_data::gen::QuestConfig;
    use ossm_data::Dataset;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    fn store() -> PageStore {
        let d = QuestConfig {
            num_transactions: 400,
            num_items: 20,
            avg_transaction_len: 5.0,
            ..QuestConfig::small()
        }
        .generate();
        PageStore::with_page_count(d, 8)
    }

    #[test]
    fn tracked_pattern_bound_is_exact() {
        let s = store();
        let seg = Segmentation::identity(8);
        let pattern = set(&[0, 1]);
        let g = GeneralizedOssm::from_pages(&s, &seg, vec![pattern.clone()]);
        assert_eq!(g.upper_bound(&pattern), s.dataset().support(&pattern));
        assert_eq!(g.num_tracked(), 1);
    }

    #[test]
    fn bound_is_never_looser_than_base_and_still_sound() {
        let s = store();
        let seg =
            Segmentation::from_groups(vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]], 8);
        let bubble = BubbleList::from_store(&s, s.dataset().absolute_threshold(0.05), 6);
        let g = GeneralizedOssm::from_pages(&s, &seg, bubble_pairs(&bubble));
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                for c in (b + 1)..12 {
                    let x = set(&[a, b, c]);
                    let gb = g.upper_bound(&x);
                    assert!(gb <= g.base().upper_bound(&x), "looser for {x}");
                    assert!(gb >= s.dataset().support(&x), "unsound for {x}");
                }
            }
        }
    }

    #[test]
    fn superset_of_tracked_pair_gets_tighter_bound() {
        // Two items that never co-occur: tracking their pair forces every
        // superset bound to zero even when singleton bounds cannot.
        let d = Dataset::new(
            3,
            vec![set(&[0, 2]), set(&[0, 2]), set(&[1, 2]), set(&[1, 2])],
        );
        let s = PageStore::with_page_count(d, 1);
        let seg = Segmentation::identity(1);
        let base_only = GeneralizedOssm::from_pages(&s, &seg, vec![]);
        let tracked = GeneralizedOssm::from_pages(&s, &seg, vec![set(&[0, 1])]);
        let triple = set(&[0, 1, 2]);
        assert_eq!(
            base_only.upper_bound(&triple),
            2,
            "singletons cannot see the exclusion"
        );
        assert_eq!(tracked.upper_bound(&triple), 0, "the tracked pair can");
        assert!(tracked.prunes(&triple, 1));
    }

    #[test]
    fn singletons_and_empty_sets_are_not_tracked() {
        let s = store();
        let seg = Segmentation::identity(8);
        let g =
            GeneralizedOssm::from_pages(&s, &seg, vec![Itemset::empty(), set(&[3]), set(&[1, 2])]);
        assert_eq!(g.num_tracked(), 1, "only the pair survives");
        assert_eq!(g.upper_bound(&Itemset::empty()), s.dataset().len() as u64);
    }

    #[test]
    fn memory_accounts_for_tracked_rows() {
        let s = store();
        let seg = Segmentation::identity(8);
        let g0 = GeneralizedOssm::from_pages(&s, &seg, vec![]);
        let g2 = GeneralizedOssm::from_pages(&s, &seg, vec![set(&[0, 1]), set(&[2, 3])]);
        assert_eq!(g2.memory_bytes() - g0.memory_bytes(), 2 * 8 * 8);
    }

    #[test]
    fn bubble_pairs_enumerates_all_pairs() {
        let bubble = BubbleList::select(&[10, 20, 30, 40], 25, 3);
        let pairs = bubble_pairs(&bubble);
        assert_eq!(pairs.len(), 3);
    }
}
