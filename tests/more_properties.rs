//! Additional property tests: counting back-ends, persistence codecs,
//! episode/sequence semantics, and the generators' structural invariants.

use proptest::prelude::*;

use ossm_data::{Dataset, Itemset};

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..=10).prop_flat_map(|m| {
        let tx = proptest::collection::vec(0u32..(1u32 << m), 0..50);
        tx.prop_map(move |masks| {
            let transactions = masks
                .into_iter()
                .map(|mask| Itemset::new((0..m as u32).filter(|&i| mask & (1 << i) != 0)))
                .collect();
            Dataset::new(m, transactions)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_tree_always_matches_linear_counting(
        d in dataset_strategy(),
        cand_masks in proptest::collection::vec(1u32..1024, 1..30),
    ) {
        let m = d.num_items();
        let candidates: Vec<Itemset> = cand_masks
            .into_iter()
            .map(|mask| Itemset::new((0..m as u32).filter(|&i| mask & (1 << i) != 0)))
            .filter(|c| !c.is_empty())
            .collect();
        if candidates.is_empty() {
            return Ok(());
        }
        prop_assert_eq!(
            ossm_mining::hashtree::count_hash_tree(d.transactions(), &candidates),
            ossm_mining::support::count_linear(d.transactions(), &candidates)
        );
    }

    #[test]
    fn flat_codec_roundtrips(d in dataset_strategy()) {
        let mut buf = Vec::new();
        ossm_data::io::write_dataset(&mut buf, &d).expect("write");
        let back = ossm_data::io::read_dataset(&mut buf.as_slice()).expect("read");
        prop_assert_eq!(back, d);
    }

    #[test]
    fn paged_codec_roundtrips_and_indexes_correctly(d in dataset_strategy()) {
        let dir = std::env::temp_dir().join("ossm-proptest-pages");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("pt-{}.pages", std::process::id()));
        ossm_data::disk::write_paged(&path, &d, 256).expect("write");
        let mut store = ossm_data::disk::DiskStore::open(&path, 3).expect("open");
        prop_assert_eq!(store.num_transactions(), d.len() as u64);
        // The sparse index must reproduce the dataset's singleton supports.
        let mut totals = vec![0u64; d.num_items()];
        for s in store.summaries() {
            for &(item, count) in &s.supports {
                totals[item as usize] += u64::from(count);
            }
        }
        prop_assert_eq!(&totals, &d.singleton_supports());
        prop_assert_eq!(store.to_dataset().expect("read"), d);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ossm_persistence_roundtrips(d in dataset_strategy()) {
        if d.is_empty() {
            return Ok(());
        }
        let min = ossm_core::minimize_segments(&d);
        let mut buf = Vec::new();
        ossm_core::persist::write_ossm(&mut buf, &min.ossm).expect("write");
        let back = ossm_core::persist::read_ossm(&mut buf.as_slice()).expect("read");
        prop_assert_eq!(back, min.ossm);
    }

    #[test]
    fn serial_episode_containment_matches_brute_force(
        window in proptest::collection::vec(0u32..5, 0..12),
        episode in proptest::collection::vec(0u32..5, 1..5),
    ) {
        use ossm_mining::SerialEpisode;
        let e = SerialEpisode::new(episode.clone());
        // Brute force: is `episode` a subsequence of `window`?
        fn is_subsequence(needle: &[u32], hay: &[u32]) -> bool {
            let mut it = hay.iter();
            needle.iter().all(|n| it.any(|h| h == n))
        }
        prop_assert_eq!(e.occurs_in(&window), is_subsequence(&episode, &window));
    }

    #[test]
    fn sequence_pattern_support_is_antitone_under_extension(
        masks in proptest::collection::vec(
            proptest::collection::vec(1u32..64, 1..5), 1..15),
        ext in 0u32..6,
    ) {
        use ossm_mining::{SequenceDb, SequencePattern};
        let to_sets = |seq: &Vec<u32>| -> Vec<Itemset> {
            seq.iter()
                .map(|&mask| Itemset::new((0..6u32).filter(|&i| mask & (1 << i) != 0)))
                .collect()
        };
        let db = SequenceDb::new(6, masks.iter().map(to_sets).collect());
        let base = SequencePattern::new(vec![Itemset::singleton(ossm_data::ItemId(ext))]);
        let extended = SequencePattern::new(vec![
            Itemset::singleton(ossm_data::ItemId(ext)),
            Itemset::singleton(ossm_data::ItemId((ext + 1) % 6)),
        ]);
        prop_assert!(db.support(&extended) <= db.support(&base));
        // Union-set bound sanity: support never exceeds the union dataset's
        // support of the pattern's items.
        let union = db.union_dataset();
        prop_assert!(db.support(&extended) <= union.support(&extended.union_items()));
    }

    #[test]
    fn windowing_preserves_event_mass(
        times in proptest::collection::vec(0u64..200, 0..60),
        width in 1u64..20,
    ) {
        use ossm_data::sequence::{Event, EventSequence};
        let events: Vec<Event> = times
            .iter()
            .map(|&t| Event { time: t, kind: (t % 7) as u32 })
            .collect();
        let n = events.len();
        let seq = EventSequence::new(7, events);
        // Tumbling windows: every event lands in exactly one window, so
        // summed window sizes (with multiplicity collapsed per kind) never
        // exceed the event count, and each event's kind is present in its
        // window.
        let d = seq.windows(width, width);
        let total_kinds: usize = d.transactions().iter().map(Itemset::len).sum();
        prop_assert!(total_kinds <= n.max(1));
        if n > 0 {
            let occupied: usize =
                d.transactions().iter().filter(|t| !t.is_empty()).count();
            prop_assert!(occupied >= 1);
        }
    }

    #[test]
    fn generator_outputs_always_fit_their_domain(seed in 0u64..50) {
        use ossm_data::gen::{AlarmConfig, QuestConfig, SkewedConfig};
        let q = QuestConfig { num_transactions: 60, num_items: 15, seed, ..QuestConfig::small() }
            .generate();
        prop_assert_eq!(q.num_items(), 15);
        prop_assert!(q.transactions().iter().all(|t| !t.is_empty()));
        let s = SkewedConfig { num_transactions: 60, num_items: 15, seed, ..SkewedConfig::small() }
            .generate();
        prop_assert_eq!(s.len(), 60);
        let a = AlarmConfig { num_windows: 60, num_alarm_types: 15, seed, ..AlarmConfig::small() }
            .generate();
        prop_assert_eq!(a.len(), 60);
    }

    #[test]
    fn closed_and_maximal_are_consistent(d in dataset_strategy()) {
        if d.is_empty() {
            return Ok(());
        }
        let min_support = (d.len() as u64 / 4).max(1);
        let full = ossm_mining::Apriori::new().mine(&d, min_support).patterns;
        let closed = ossm_mining::patterns::closed(&full);
        let maximal = ossm_mining::patterns::maximal(&full);
        // maximal ⊆ closed ⊆ full, and closed reconstructs every support.
        for p in &maximal {
            prop_assert!(closed.contains(p));
        }
        for (p, s) in full.iter() {
            prop_assert_eq!(
                ossm_mining::patterns::support_from_closed(&closed, p),
                Some(s)
            );
        }
    }
}
