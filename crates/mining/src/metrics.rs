//! Mining run metrics.
//!
//! The paper's evaluation hinges on two quantities: wall-clock runtime and
//! the number of candidate itemsets that actually require frequency
//! counting (Figure 4(b) plots candidate 2-itemsets; Section 7's table
//! reports `|C2|` for DHP). Every miner in this crate fills a
//! [`MiningMetrics`] so experiments can report both, and tests can assert
//! on the deterministic candidate counts rather than on timing.

use std::time::Duration;

/// Candidate bookkeeping for one level `k` of a level-wise miner (or one
/// extension batch of a depth-first miner).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelMetrics {
    /// Pattern size `k` this row describes.
    pub level: usize,
    /// Candidates generated (after the miner's own join/prune/hash logic).
    pub generated: u64,
    /// Candidates removed by the candidate filter (the OSSM) *before*
    /// counting.
    pub filtered_out: u64,
    /// Candidates whose frequency was actually counted against the data.
    pub counted: u64,
    /// Candidates found frequent.
    pub frequent: u64,
}

/// Aggregate metrics for one mining run.
#[derive(Clone, Debug, Default)]
pub struct MiningMetrics {
    /// Per-level rows, in increasing `k`.
    pub levels: Vec<LevelMetrics>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl MiningMetrics {
    /// Records a finished level.
    pub fn push_level(&mut self, level: LevelMetrics) {
        self.levels.push(level);
    }

    /// The row for pattern size `k`, if the run reached it. If a miner
    /// reports a level more than once (depth-first miners do), the rows are
    /// summed.
    pub fn level(&self, k: usize) -> Option<LevelMetrics> {
        let rows: Vec<&LevelMetrics> = self.levels.iter().filter(|l| l.level == k).collect();
        if rows.is_empty() {
            return None;
        }
        let mut out = LevelMetrics {
            level: k,
            ..LevelMetrics::default()
        };
        for r in rows {
            out.generated += r.generated;
            out.filtered_out += r.filtered_out;
            out.counted += r.counted;
            out.frequent += r.frequent;
        }
        Some(out)
    }

    /// Total candidates counted across all levels — the paper's proxy for
    /// frequency-counting work.
    pub fn total_counted(&self) -> u64 {
        self.levels.iter().map(|l| l.counted).sum()
    }

    /// Total candidates removed by the filter across all levels.
    pub fn total_filtered_out(&self) -> u64 {
        self.levels.iter().map(|l| l.filtered_out).sum()
    }

    /// Total frequent patterns found.
    pub fn total_frequent(&self) -> u64 {
        self.levels.iter().map(|l| l.frequent).sum()
    }

    /// Candidate 2-itemsets that required counting — the y-axis of
    /// Figure 4(b) and the `|C2|` column of Section 7's table.
    pub fn candidate_2_itemsets_counted(&self) -> u64 {
        self.level(2).map_or(0, |l| l.counted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_levels() {
        let mut m = MiningMetrics::default();
        m.push_level(LevelMetrics {
            level: 1,
            generated: 10,
            filtered_out: 0,
            counted: 10,
            frequent: 6,
        });
        m.push_level(LevelMetrics {
            level: 2,
            generated: 15,
            filtered_out: 9,
            counted: 6,
            frequent: 3,
        });
        m.push_level(LevelMetrics {
            level: 3,
            generated: 1,
            filtered_out: 0,
            counted: 1,
            frequent: 1,
        });
        assert_eq!(m.total_counted(), 17);
        assert_eq!(m.total_filtered_out(), 9);
        assert_eq!(m.total_frequent(), 10);
        assert_eq!(m.candidate_2_itemsets_counted(), 6);
    }

    #[test]
    fn duplicate_levels_are_summed() {
        let mut m = MiningMetrics::default();
        m.push_level(LevelMetrics {
            level: 2,
            generated: 3,
            filtered_out: 1,
            counted: 2,
            frequent: 1,
        });
        m.push_level(LevelMetrics {
            level: 2,
            generated: 4,
            filtered_out: 0,
            counted: 4,
            frequent: 2,
        });
        let l2 = m.level(2).unwrap();
        assert_eq!(l2.generated, 7);
        assert_eq!(l2.counted, 6);
        assert_eq!(m.level(5), None);
    }
}
