//! `ossm-obs` — zero-cost-when-disabled observability for the OSSM
//! reproduction.
//!
//! The paper's value proposition is quantitative: how many candidates does
//! the eq. (1) upper bound prune before the counting pass, and how much
//! accuracy does a constrained segmentation give up (eq. 2)? This crate
//! gives every layer a way to answer those questions at runtime:
//!
//! - [`Counter`] — an atomic event counter, declared as a `static` so hot
//!   loops pay one relaxed `fetch_add` per event;
//! - [`Histogram`] — log2-bucketed value distribution (bound slack,
//!   transaction lengths, …);
//! - phase timers — monotonic wall-clock spans recorded via the RAII
//!   [`PhaseGuard`] returned by [`phase`];
//! - [`MetricsRegistry`] — the global sink all of the above register with,
//!   supporting labeled [`Scope`]s for dynamic names (per-level miner
//!   counts, per-strategy build timings);
//! - [`Reporter`] — renders a [`Snapshot`] as a human table or JSON lines;
//! - hierarchical spans — [`span`] opens an RAII [`SpanGuard`] that feeds
//!   the phase aggregates *and*, between [`trace_begin`] and
//!   [`trace_take`], records a [`SpanEvent`] with a parent link taken
//!   from a thread-local span stack. The collected [`Trace`] exports as
//!   Chrome trace-event JSON or folded flamegraph stacks
//!   ([`TraceFormat`]). [`detail_span`] is the hot-loop variant that is
//!   inert unless a trace is being recorded.
//!
//! # Zero cost when disabled
//!
//! Everything is gated on the `enabled` cargo feature. Without it, every
//! type here is a zero-sized stub and every method an empty
//! `#[inline(always)]` body, so instrumented call sites compile to
//! nothing — no atomics, no registry, no strings. Consumer crates expose
//! this as their own `obs` feature (on by default) forwarding to
//! `ossm-obs/enabled`; `--no-default-features` turns the whole chain off.
//! Code that wants to skip *computing* an expensive observation (not just
//! recording it) can branch on the [`ENABLED`] constant, which the
//! optimizer folds away.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Whether instrumentation is compiled in. `const`, so `if
/// ossm_obs::ENABLED { … }` costs nothing when the feature is off.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, up to `i = 64` for `u64::MAX`.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `64 − leading_zeros(v)`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i` (`0`, then powers of two).
///
/// Panics on `index ≥ NUM_BUCKETS`: the shift `1 << (index − 1)` would
/// otherwise be UB-masked into a silently wrong small value in release
/// builds (e.g. `bucket_lower_bound(65)` would quietly return 1).
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    assert!(
        index < NUM_BUCKETS,
        "bucket index {index} out of range 0..{NUM_BUCKETS}"
    );
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// The R3 metric-name registry, embedded so tooling (the `regress`
/// coverage table, `ossm obs diff`) can check emitted names against the
/// same source of truth `ossm-lint` enforces. Entries ending in `.*`
/// declare dynamic-name prefixes (scoped counters, allocator-injected
/// gauges) rather than single literals.
pub const REGISTRY: &str = include_str!("../registry.txt");

pub mod alloc;
mod gauge;
pub mod interval;
pub mod json;
pub mod quantile;
pub mod recorder;
mod report;
mod serve;
mod snapshot;
mod trace;

pub use alloc::{alloc_scope, AllocScope};
pub use gauge::{Gauge, GaugeCharge};
pub use interval::{
    CounterDelta, GaugeDelta, HistogramDelta, IntervalDelta, IntervalTracker, PhaseDelta,
};
pub use quantile::{quantile, Quantiles};
pub use report::{Reporter, StatsFormat};
pub use serve::MetricsServer;
pub use snapshot::{GaugeSnapshot, HistogramSnapshot, PhaseSnapshot, Snapshot};
pub use trace::{SpanEvent, Trace, TraceFormat};

#[cfg(feature = "enabled")]
mod live;
#[cfg(feature = "enabled")]
pub use live::{
    detail_span, phase, registry, span, trace_active, trace_begin, trace_take, Counter, Histogram,
    Latency, LatencyTimer, MetricsRegistry, PhaseGuard, Scope, SpanGuard,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{
    detail_span, phase, registry, span, trace_active, trace_begin, trace_take, Counter, Histogram,
    Latency, LatencyTimer, MetricsRegistry, PhaseGuard, Scope, SpanGuard,
};
