//! Dataset persistence: a small, self-describing binary codec.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   : 8 bytes  = b"OSSMDATA"
//! version : u32      = 1
//! m       : u32      number of items
//! n       : u64      number of transactions
//! per transaction: len: u32, then len × u32 item ids (strictly increasing)
//! ```
//!
//! The codec exists so experiments can generate a workload once and reuse it
//! across runs; it deliberately avoids pulling a serialization framework
//! into the public API.

use std::io::{self, Read, Write};

use crate::item::{ItemId, Itemset};
use crate::transaction::Dataset;

/// On-disk magic for serialized datasets (lint rule R5: defined once here).
pub const MAGIC: &[u8; 8] = b"OSSMDATA";
const VERSION: u32 = 1;

/// Serializes `dataset` to `w`.
pub fn write_dataset<W: Write>(w: &mut W, dataset: &Dataset) -> io::Result<()> {
    let mut span = ossm_obs::span("data.io.write");
    let mut bytes: u64 = (MAGIC.len() + 4 + 4 + 8) as u64;
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(dataset.num_items() as u32).to_le_bytes())?;
    w.write_all(&(dataset.len() as u64).to_le_bytes())?;
    for t in dataset.transactions() {
        w.write_all(&(t.len() as u32).to_le_bytes())?;
        for item in t.items() {
            w.write_all(&item.0.to_le_bytes())?;
        }
        bytes += 4 + 4 * t.len() as u64;
    }
    span.attach("bytes", bytes);
    span.attach("transactions", dataset.len() as u64);
    Ok(())
}

/// Deserializes a dataset from `r`, validating magic, version, bounds, and
/// per-transaction item ordering.
pub fn read_dataset<R: Read>(r: &mut R) -> io::Result<Dataset> {
    let mut span = ossm_obs::span("data.io.read");
    // The deserialized transactions are the page store's backing memory;
    // charge them to the data.page subsystem.
    let _mem = ossm_obs::alloc_scope("data.page");
    let mut bytes: u64 = (MAGIC.len() + 4 + 4 + 8) as u64;
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an OSSM dataset file (bad magic)"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported version {version}")));
    }
    let m = read_u32(r)? as usize;
    let n = read_u64(r)?;
    let n = usize::try_from(n).map_err(|_| bad("transaction count overflows usize"))?;
    let mut transactions = Vec::with_capacity(n.min(1 << 20));
    for i in 0..n {
        let len = read_u32(r)? as usize;
        bytes += 4 + 4 * len as u64;
        // Cap the pre-allocation: a corrupt length field should hit the
        // domain/ordering checks below (or EOF), not OOM first.
        let mut items = Vec::with_capacity(len.min(1 << 16));
        let mut prev: Option<u32> = None;
        for _ in 0..len {
            let id = read_u32(r)?;
            if id as usize >= m {
                return Err(bad(format!(
                    "transaction {i}: item {id} outside domain 0..{m}"
                )));
            }
            if let Some(p) = prev {
                if id <= p {
                    return Err(bad(format!(
                        "transaction {i}: items not strictly increasing"
                    )));
                }
            }
            prev = Some(id);
            items.push(ItemId(id));
        }
        transactions.push(Itemset::from_sorted(items));
    }
    span.attach("bytes", bytes);
    span.attach("transactions", n as u64);
    Ok(Dataset::new(m, transactions))
}

/// Writes `dataset` to the file at `path`.
pub fn save(path: &std::path::Path, dataset: &Dataset) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_dataset(&mut f, dataset)?;
    f.flush()
}

/// Reads a dataset from the file at `path`.
pub fn load(path: &std::path::Path) -> io::Result<Dataset> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_dataset(&mut f)
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::QuestConfig;

    fn roundtrip(d: &Dataset) -> Dataset {
        let mut buf = Vec::new();
        write_dataset(&mut buf, d).unwrap();
        read_dataset(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_dataset() {
        let d = QuestConfig {
            num_transactions: 150,
            ..QuestConfig::small()
        }
        .generate();
        assert_eq!(roundtrip(&d), d);
    }

    #[test]
    fn roundtrip_empty_dataset() {
        let d = Dataset::empty(7);
        assert_eq!(roundtrip(&d), d);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_dataset(&mut &b"NOTMAGIC\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_input() {
        let d = QuestConfig {
            num_transactions: 20,
            ..QuestConfig::small()
        }
        .generate();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &d).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_dataset(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_out_of_domain_item() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes()); // version
        buf.extend_from_slice(&2u32.to_le_bytes()); // m = 2
        buf.extend_from_slice(&1u64.to_le_bytes()); // n = 1
        buf.extend_from_slice(&1u32.to_le_bytes()); // len = 1
        buf.extend_from_slice(&5u32.to_le_bytes()); // item 5 ∉ 0..2
        let err = read_dataset(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("outside domain"), "{err}");
    }

    #[test]
    fn rejects_unsorted_items() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        assert!(read_dataset(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ossm-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.bin");
        let d = QuestConfig {
            num_transactions: 40,
            ..QuestConfig::small()
        }
        .generate();
        save(&path, &d).unwrap();
        assert_eq!(load(&path).unwrap(), d);
        std::fs::remove_file(&path).ok();
    }
}
