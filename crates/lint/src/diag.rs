//! Lint diagnostics: one record per violation, rendered as human text or
//! JSON lines following the `ossm_obs` reporter conventions (`"type"`
//! discriminator first, hand-rolled escaping, one object per line).

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`R1` … `R5`).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Stable allowlist key (line-number free, e.g. `open.expect`).
    pub key: String,
    /// Human explanation.
    pub message: String,
}

impl Diagnostic {
    /// `R1 crates/data/src/wal.rs:113 … [key: open.expect]`
    pub fn human(&self) -> String {
        format!(
            "{} {}:{} {} [key: {}]",
            self.rule, self.path, self.line, self.message, self.key
        )
    }

    /// One JSON object, `ossm_obs::Reporter`-style.
    pub fn json(&self) -> String {
        format!(
            r#"{{"type":"lint","rule":"{}","path":"{}","line":{},"key":"{}","message":"{}"}}"#,
            self.rule,
            json_escape(&self.path),
            self.line,
            json_escape(&self.key),
            json_escape(&self.message),
        )
    }
}

/// Renders the JSON-lines report: one object per diagnostic plus a
/// trailing summary object.
pub fn json_report(diags: &[Diagnostic], allowlisted: usize, files_scanned: usize) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.json());
        out.push('\n');
    }
    out.push_str(&format!(
        r#"{{"type":"lint.summary","violations":{},"allowlisted":{},"files":{}}}"#,
        diags.len(),
        allowlisted,
        files_scanned
    ));
    out.push('\n');
    out
}

/// Minimal JSON string escaping — the same set `ossm_obs`'s reporter
/// escapes (diagnostic text never contains other control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "R1",
            path: "crates/data/src/wal.rs".into(),
            line: 113,
            key: "open.expect".into(),
            message: "expect() on a durability path".into(),
        }
    }

    #[test]
    fn human_line_names_rule_and_location() {
        let h = sample().human();
        assert!(h.starts_with("R1 crates/data/src/wal.rs:113"));
        assert!(h.contains("[key: open.expect]"));
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let mut d = sample();
        d.message = "bad \"magic\" b\\tail".into();
        let j = d.json();
        assert!(j.contains(r#"bad \"magic\" b\\tail"#), "{j}");
    }

    #[test]
    fn report_ends_with_summary() {
        let r = json_report(&[sample()], 2, 40);
        let last = r.lines().last().expect("summary line");
        assert!(last.contains(r#""type":"lint.summary""#), "{last}");
        assert!(last.contains(r#""violations":1"#));
        assert!(last.contains(r#""allowlisted":2"#));
    }
}
