//! Kill-and-recover: crash images of the durable incremental OSSM are
//! reopened and must come back with sound eq. (1) bounds.
//!
//! The crash images are built deterministically by mutilating the WAL /
//! snapshot files exactly the way an interrupted process would leave
//! them (a torn final record; a checkpoint that renamed its snapshot but
//! never reset the WAL). The feature-gated fault-injection variant of
//! the torn-append scenario lives in `ossm-core`'s unit tests; this file
//! runs under default features so tier-1 always exercises recovery.

use ossm_core::{DurableIncrementalOssm, LossCalculator};
use ossm_data::gen::SkewedConfig;
use ossm_data::{Dataset, Itemset};
use std::path::{Path, PathBuf};

const M: usize = 10;
const BATCH: usize = 50;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ossm-durability-tests")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn sample() -> Dataset {
    SkewedConfig {
        num_transactions: 600,
        num_items: M,
        ..SkewedConfig::small()
    }
    .generate()
}

fn open(dir: &Path) -> (DurableIncrementalOssm, ossm_core::RecoveryReport) {
    DurableIncrementalOssm::open(dir, M, 4, LossCalculator::all_items()).expect("open")
}

/// Asserts the map's bound dominates `data`'s true support for every
/// pair itemset over the full domain — the acceptance bar for recovery.
fn assert_all_pairs_sound(map: &ossm_core::Ossm, data: &Dataset, context: &str) {
    for a in 0..M as u32 {
        for b in (a + 1)..M as u32 {
            let probe = Itemset::new([a, b]);
            let bound = map.upper_bound(&probe);
            let truth = data.support(&probe);
            assert!(
                bound >= truth,
                "{context}: bound {bound} < true support {truth} for {{{a},{b}}}"
            );
        }
    }
}

#[test]
fn torn_wal_append_recovers_to_sound_bounds() {
    let dir = tmp_dir("torn-append");
    let d = sample();
    let batches: Vec<&[Itemset]> = d.transactions().chunks(BATCH).collect();

    let (mut map, _) = open(&dir);
    for (i, batch) in batches.iter().enumerate() {
        map.append_transactions(batch.iter()).expect("append");
        if i == 4 {
            map.checkpoint().expect("checkpoint");
        }
    }
    drop(map);

    // Crash image: the process died mid-way through writing the final
    // WAL record — its tail is half there. Everything earlier was
    // fsynced by append() before being acknowledged.
    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).expect("wal exists").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open wal");
    f.set_len(len - 10).expect("tear the last record");
    drop(f);

    let (map, report) = open(&dir);
    assert!(report.from_snapshot);
    assert!(report.truncated_tail, "the tear must be noticed");
    // Batches 5..N-1 were in the WAL whole; the torn one is gone.
    assert_eq!(report.replayed_appends, batches.len() - 5 - 1);

    // The recovered map covers exactly the acknowledged data: every
    // batch but the torn final one. All pair bounds must dominate it.
    let acknowledged = Dataset::new(
        M,
        d.transactions()[..d.len() - batches.last().unwrap().len()].to_vec(),
    );
    let snap = map.snapshot();
    assert_eq!(snap.num_transactions(), acknowledged.len() as u64);
    assert_all_pairs_sound(&snap, &acknowledged, "after torn-append recovery");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_between_snapshot_and_wal_reset_stays_sound() {
    let dir = tmp_dir("double-replay");
    let d = sample();
    let batches: Vec<&[Itemset]> = d.transactions().chunks(BATCH).collect();

    let (mut map, _) = open(&dir);
    for batch in &batches {
        map.append_transactions(batch.iter()).expect("append");
    }
    // Crash image: checkpoint renamed the new snapshot into place, but
    // the process died before the WAL reset hit the disk. Reconstruct by
    // saving the WAL bytes across a checkpoint and putting them back.
    let wal = dir.join("wal.log");
    let wal_bytes = std::fs::read(&wal).expect("read wal");
    map.checkpoint().expect("checkpoint");
    drop(map);
    std::fs::write(&wal, &wal_bytes).expect("resurrect the stale wal");

    let (map, report) = open(&dir);
    assert!(report.from_snapshot);
    assert_eq!(
        report.replayed_appends,
        batches.len(),
        "stale records replayed"
    );

    // Every append is now counted twice — looser, never unsound: the
    // bound still dominates the data, and (being a pure over-count) is
    // at most double the single-counted bound.
    let snap = map.snapshot();
    assert_eq!(snap.num_transactions(), 2 * d.len() as u64);
    assert_all_pairs_sound(&snap, &d, "after double replay");
    std::fs::remove_dir_all(&dir).ok();
}

/// Kill-and-recover with a postmortem: an injected WAL write fault fires
/// mid-append with `OSSM_FLIGHTREC` set, so the flight recorder dumps its
/// ring as JSONL. The dump must exist, parse, and end on the tagged fault
/// site — and the store must still recover to sound bounds afterwards.
#[cfg(all(feature = "faults", feature = "obs"))]
#[test]
fn injected_wal_fault_dumps_the_flight_recorder() {
    let dir = tmp_dir("fault-dump");
    let dump = std::env::temp_dir()
        .join("ossm-durability-tests")
        .join("fault-dump-flightrec.jsonl");
    std::fs::create_dir_all(dump.parent().expect("parent")).expect("dump dir");
    std::fs::remove_file(&dump).ok();
    std::env::set_var("OSSM_FLIGHTREC", &dump);

    let d = sample();
    let batches: Vec<&[Itemset]> = d.transactions().chunks(BATCH).collect();
    let (mut map, _) = open(&dir);
    map.append_transactions(batches[0].iter()).expect("append");

    // The next WAL append dies before any byte persists.
    let mut plan = ossm_data::fault::FaultPlan::new();
    plan.fail_write("data.wal.append", 1);
    let guard = plan.arm();
    let err = map
        .append_transactions(batches[1].iter())
        .expect_err("injected fault");
    assert!(err.to_string().contains("injected"), "{err}");
    assert_eq!(guard.fired(), 1);
    drop(guard);
    drop(map);
    std::env::remove_var("OSSM_FLIGHTREC");

    // The dump was written at the fault site, parses, and its final
    // event is the tagged fault.
    let content = std::fs::read_to_string(&dump).expect("flight recorder dumped");
    let timeline = ossm_obs::recorder::render_timeline(&content).expect("dump parses");
    assert!(timeline.contains("fault"), "{timeline}");
    assert!(timeline.contains("data.wal.append"), "{timeline}");
    let last = content
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .expect("events");
    assert!(
        last.contains("\"kind\":\"fault\"") && last.contains("data.wal.append"),
        "the dump ends on the fault site: {last}"
    );

    // Kill-and-recover: the acknowledged batch survives with sound bounds.
    let (map, report) = open(&dir);
    assert_eq!(report.replayed_appends, 1, "only the acknowledged batch");
    let acknowledged = Dataset::new(M, batches[0].to_vec());
    let snap = map.snapshot();
    assert_eq!(snap.num_transactions(), acknowledged.len() as u64);
    assert_all_pairs_sound(&snap, &acknowledged, "after injected-fault recovery");
    // The dump file is left behind on purpose: CI uploads it as the
    // postmortem artifact of this kill-and-recover scenario.
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_shutdown_and_reopen_is_lossless() {
    let dir = tmp_dir("clean");
    let d = sample();
    let (mut map, _) = open(&dir);
    for batch in d.transactions().chunks(BATCH) {
        map.append_transactions(batch.iter()).expect("append");
    }
    map.checkpoint().expect("checkpoint");
    let before = map.snapshot();
    drop(map);

    let (map, report) = open(&dir);
    assert!(report.from_snapshot);
    assert_eq!(report.replayed_appends, 0);
    assert!(!report.truncated_tail);
    assert_eq!(map.snapshot(), before);
    assert_all_pairs_sound(&map.snapshot(), &d, "after clean reopen");
    std::fs::remove_dir_all(&dir).ok();
}
