//! Zero-sized stubs, compiled when the `enabled` feature is off.
//!
//! Every type is a ZST and every method an empty `#[inline(always)]`
//! body, so instrumented call sites vanish in release builds. The API
//! mirrors [`crate::live`] exactly; consumer code never needs `cfg`.

use crate::snapshot::Snapshot;
use crate::trace::Trace;

/// Disabled stand-in for the live `Counter`: a ZST whose methods do
/// nothing.
pub struct Counter;

impl Counter {
    /// Does nothing (instrumentation disabled).
    pub const fn new(_name: &'static str) -> Self {
        Counter
    }

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn incr(&'static self) {}

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn add(&'static self, _n: u64) {}

    /// Always 0 (instrumentation disabled).
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// Disabled stand-in for the live `Histogram`.
pub struct Histogram;

impl Histogram {
    /// Does nothing (instrumentation disabled).
    pub const fn new(_name: &'static str) -> Self {
        Histogram
    }

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn record(&'static self, _value: u64) {}
}

/// Disabled stand-in for the live `Latency` recorder.
pub struct Latency;

impl Latency {
    /// Does nothing (instrumentation disabled).
    pub const fn new(_name: &'static str) -> Self {
        Latency
    }

    /// A timer that measures nothing (instrumentation disabled).
    #[inline(always)]
    pub fn time(&'static self) -> LatencyTimer {
        LatencyTimer
    }

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn record_nanos(&'static self, _nanos: u64) {}
}

/// Disabled stand-in for the live `LatencyTimer` (drop records nothing).
#[must_use = "the measured span ends when the timer drops"]
pub struct LatencyTimer;

/// Disabled stand-in for the live `MetricsRegistry`.
pub struct MetricsRegistry;

static REGISTRY: MetricsRegistry = MetricsRegistry;

/// The process-wide registry (a ZST here).
#[inline(always)]
pub fn registry() -> &'static MetricsRegistry {
    &REGISTRY
}

/// Starts a phase span that records nothing.
#[inline(always)]
pub fn phase(_name: impl Into<String>) -> SpanGuard {
    SpanGuard
}

/// Opens a span that records nothing.
#[inline(always)]
pub fn span(_name: impl Into<String>) -> SpanGuard {
    SpanGuard
}

/// Opens a detail span that records nothing.
#[inline(always)]
pub fn detail_span(_name: impl Into<String>) -> SpanGuard {
    SpanGuard
}

/// Does nothing (instrumentation disabled): no trace will be collected.
#[inline(always)]
pub fn trace_begin() {}

/// Always false (instrumentation disabled).
#[inline(always)]
pub fn trace_active() -> bool {
    false
}

/// Always empty (instrumentation disabled).
#[inline(always)]
pub fn trace_take() -> Trace {
    Trace::default()
}

impl MetricsRegistry {
    /// A scope over nothing.
    #[inline(always)]
    pub fn scope(&'static self, _label: impl Into<String>) -> Scope {
        Scope
    }

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn add(&self, _name: &str, _n: u64) {}

    /// Always empty (instrumentation disabled).
    #[inline(always)]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn reset(&self) {}
}

/// Disabled stand-in for the live `Scope`.
pub struct Scope;

impl Scope {
    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn add(&self, _name: &str, _n: u64) {}

    /// Starts a span that records nothing.
    #[inline(always)]
    pub fn phase(&self, _name: &str) -> SpanGuard {
        SpanGuard
    }
}

/// Disabled stand-in for the live `SpanGuard` (drop records nothing).
#[must_use = "the span ends when the guard drops"]
pub struct SpanGuard;

impl SpanGuard {
    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn attach(&mut self, _key: &str, _value: u64) {}

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn watch(&mut self, _counter: &'static Counter) {}
}

/// Former name of [`SpanGuard`], kept for PR 1 call sites.
pub type PhaseGuard = SpanGuard;
