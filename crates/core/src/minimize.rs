//! The segment minimization problem (Section 4 of the paper).
//!
//! Given the collection `T`, find the minimum number of segments `n_min`
//! such that the OSSM upper bound equals the actual support for *every*
//! itemset. Theorem 1: allowing `T` to be rearranged,
//! `n_min = min(|T|, 2^m − m)` in the general case — transactions whose
//! itemsets induce the same configuration can be merged losslessly
//! (Lemma 1), and nothing else can.
//!
//! Corollary 1 carries the result to page granularity: starting from the
//! `p` per-page aggregates, pages of equal configuration merge losslessly
//! *relative to the page-level OSSM*, and `n_min = min(p, 2^m − m)`.
//!
//! Both constructions are implemented here, together with analysis helpers
//! that exhaustively verify exactness on small domains (used heavily by the
//! property tests).

use std::collections::HashMap;

use ossm_data::{Dataset, Itemset, PageStore};

use crate::config::{max_configurations, Configuration, TransactionConfigKey};
use crate::segmentation::{Aggregate, Segmentation};
use crate::ssm::Ossm;

/// Result of transaction-granularity segment minimization.
#[derive(Clone, Debug)]
pub struct SegmentMinimization {
    /// `assignment[i]` = segment of transaction `i`.
    pub assignment: Vec<usize>,
    /// Number of segments (= number of distinct configurations in `T`).
    pub num_segments: usize,
    /// The exact OSSM built from the assignment.
    pub ossm: Ossm,
}

impl SegmentMinimization {
    /// Physically rearranges `dataset` so each segment's transactions are
    /// contiguous, in segment order — the "allow T to be rearranged" of
    /// Theorem 1, materialized. Useful for then packing the rearranged
    /// data into pages whose boundaries respect segments.
    ///
    /// # Panics
    /// Panics if `dataset` is not the collection this minimization was
    /// computed from (length mismatch).
    pub fn rearranged_dataset(&self, dataset: &Dataset) -> Dataset {
        assert_eq!(
            dataset.len(),
            self.assignment.len(),
            "dataset does not match assignment"
        );
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        order.sort_by_key(|&i| (self.assignment[i], i));
        dataset.reordered(&order)
    }
}

/// Groups the transactions of `dataset` by configuration (Theorem 1's
/// construction) and builds the exact OSSM.
///
/// The number of segments produced is the number of distinct transaction
/// configurations present in the data, which is at most
/// `min(|T|, 2^m − m)` ([`theorem1_bound`]).
///
/// # Panics
/// Panics if the dataset is empty (an OSSM needs at least one segment).
pub fn minimize_segments(dataset: &Dataset) -> SegmentMinimization {
    assert!(
        !dataset.is_empty(),
        "cannot build an OSSM over zero transactions"
    );
    let m = dataset.num_items();
    let mut ids: HashMap<TransactionConfigKey, usize> = HashMap::new();
    let mut assignment = Vec::with_capacity(dataset.len());
    for t in dataset.transactions() {
        let key = TransactionConfigKey::of(t, m);
        let next = ids.len();
        let seg = *ids.entry(key).or_insert(next);
        assignment.push(seg);
    }
    let num_segments = ids.len();
    let ossm = Ossm::from_transaction_assignment(dataset, &assignment, num_segments);
    SegmentMinimization {
        assignment,
        num_segments,
        ossm,
    }
}

/// Theorem 1's general-case value of `n_min`: `min(|T|, 2^m − m)`,
/// saturating for large `m`.
pub fn theorem1_bound(num_transactions: u64, num_items: usize) -> u64 {
    num_transactions.min(max_configurations(num_items))
}

/// Corollary 1's construction: groups the pages of `store` by the
/// configuration of their aggregate support vectors. The resulting OSSM's
/// bound equals the bound of the identity (one-segment-per-page) OSSM for
/// every itemset — no accuracy is lost relative to page granularity.
pub fn minimize_page_segments(store: &PageStore) -> Segmentation {
    let aggregates = Aggregate::from_pages(store);
    group_by_configuration(&aggregates)
}

/// Groups arbitrary aggregates by configuration (the Lemma 1 merge). Public
/// because the constrained-segmentation pipeline uses it as a lossless
/// pre-pass ("we assume without loss of generality that they are all of
/// different configurations", Section 5.1).
pub fn group_by_configuration(aggregates: &[Aggregate]) -> Segmentation {
    let mut ids: HashMap<Configuration, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, agg) in aggregates.iter().enumerate() {
        let cfg = Configuration::of_supports(agg.supports());
        match ids.get(&cfg) {
            Some(&g) => groups[g].push(i),
            None => {
                ids.insert(cfg, groups.len());
                groups.push(vec![i]);
            }
        }
    }
    Segmentation::from_groups(groups, aggregates.len())
}

/// Exhaustively checks the OSSM bound against actual supports for **all**
/// non-empty itemsets over the domain, returning the itemsets whose bound
/// is not exact. Exponential in `m` — analysis/testing helper only.
///
/// # Panics
/// Panics if `dataset.num_items() > 16`.
pub fn exactness_violations(ossm: &Ossm, dataset: &Dataset) -> Vec<Itemset> {
    let m = dataset.num_items();
    assert!(m <= 16, "exhaustive check is exponential; refusing m > 16");
    let mut violations = Vec::new();
    for mask in 1u32..(1u32 << m) {
        let items: Vec<u32> = (0..m as u32).filter(|&i| mask & (1 << i) != 0).collect();
        let x = Itemset::new(items);
        let ub = ossm.upper_bound(&x);
        let actual = dataset.support(&x);
        debug_assert!(ub >= actual, "bound must never undercount");
        if ub != actual {
            violations.push(x);
        }
    }
    violations
}

/// Like [`exactness_violations`], but compares two OSSMs over the same data
/// (the page version's notion of accuracy: bound vs the `p`-page bound).
/// Returns itemsets where `coarse`'s bound exceeds `fine`'s.
///
/// # Panics
/// Panics if the item domain exceeds 16 items.
pub fn relative_violations(coarse: &Ossm, fine: &Ossm) -> Vec<Itemset> {
    let m = coarse.num_items();
    assert_eq!(m, fine.num_items(), "OSSMs must share the item domain");
    assert!(m <= 16, "exhaustive check is exponential; refusing m > 16");
    let mut violations = Vec::new();
    for mask in 1u32..(1u32 << m) {
        let items: Vec<u32> = (0..m as u32).filter(|&i| mask & (1 << i) != 0).collect();
        let x = Itemset::new(items);
        if coarse.upper_bound(&x) > fine.upper_bound(&x) {
            violations.push(x);
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossm_data::ItemId;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    /// Example 2 from the paper: items a=0, b=1;
    /// T = { {a}, {a,b}, {a}, {a}, {b}, {b} }.
    fn example_2_dataset() -> Dataset {
        Dataset::new(
            2,
            vec![
                set(&[0]),
                set(&[0, 1]),
                set(&[0]),
                set(&[0]),
                set(&[1]),
                set(&[1]),
            ],
        )
    }

    #[test]
    fn example_2_from_paper() {
        let d = example_2_dataset();
        let min = minimize_segments(&d);
        // Two configurations: (a ≥ b) for t1..t4 and (b ≥ a) for t5, t6.
        assert_eq!(min.num_segments, 2);
        assert_eq!(min.assignment, vec![0, 0, 0, 0, 1, 1]);
        // Segment supports match the paper's table: S'1 = (4, 1), S'2 = (0, 2).
        assert_eq!(min.ossm.segments()[0].supports(), &[4, 1]);
        assert_eq!(min.ossm.segments()[1].supports(), &[0, 2]);
        // ub({a,b}) = min(4,1) + min(0,2) = 1 — the exact support.
        assert_eq!(min.ossm.upper_bound(&set(&[0, 1])), 1);
        assert_eq!(d.support(&set(&[0, 1])), 1);
        assert!(exactness_violations(&min.ossm, &d).is_empty());
    }

    #[test]
    fn example_2_bad_move_loses_exactness() {
        // Paper: moving t1 from S'1 to S'2 gives ub = min(3,1) + min(1,2) = 2 ≠ 1.
        let d = example_2_dataset();
        let bad = Ossm::from_transaction_assignment(&d, &[1, 0, 0, 0, 1, 1], 2);
        assert_eq!(bad.segments()[0].supports(), &[3, 1]);
        assert_eq!(bad.segments()[1].supports(), &[1, 2]);
        assert_eq!(bad.upper_bound(&set(&[0, 1])), 2);
        assert_eq!(exactness_violations(&bad, &d), vec![set(&[0, 1])]);
    }

    #[test]
    fn minimized_ossm_is_exact_on_correlated_data() {
        let d = ossm_data::gen::QuestConfig {
            num_transactions: 120,
            num_items: 8,
            num_patterns: 10,
            avg_transaction_len: 3.0,
            avg_pattern_len: 2.0,
            ..ossm_data::gen::QuestConfig::small()
        }
        .generate();
        let min = minimize_segments(&d);
        assert!(exactness_violations(&min.ossm, &d).is_empty());
        assert!(min.num_segments as u64 <= theorem1_bound(d.len() as u64, d.num_items()));
    }

    #[test]
    fn theorem1_bound_takes_the_minimum() {
        assert_eq!(theorem1_bound(10, 2), 2, "2^2 − 2 = 2 < 10");
        assert_eq!(
            theorem1_bound(3, 10),
            3,
            "fewer transactions than configurations"
        );
        assert_eq!(
            theorem1_bound(1_000_000, 1000),
            1_000_000,
            "2^1000 − 1000 saturates"
        );
    }

    #[test]
    fn page_minimization_is_lossless_relative_to_pages() {
        let d = ossm_data::gen::SkewedConfig {
            num_transactions: 200,
            num_items: 6,
            avg_transaction_len: 2.0,
            ..ossm_data::gen::SkewedConfig::small()
        }
        .generate();
        let store = PageStore::with_page_count(d, 40);
        let fine = Ossm::from_pages(&store, &Segmentation::identity(store.num_pages()));
        let seg = minimize_page_segments(&store);
        let coarse = Ossm::from_pages(&store, &seg);
        assert!(seg.num_segments() <= store.num_pages());
        assert!(relative_violations(&coarse, &fine).is_empty());
    }

    #[test]
    fn group_by_configuration_merges_duplicates_only() {
        let a1 = Aggregate::new(vec![5, 2, 0], 5);
        let a2 = Aggregate::new(vec![10, 4, 1], 10); // same config (0,1,2)
        let a3 = Aggregate::new(vec![0, 3, 1], 4); // config (1,2,0)
        let seg = group_by_configuration(&[a1, a2, a3]);
        assert_eq!(seg.num_segments(), 2);
        assert_eq!(seg.groups(), &[vec![0, 1], vec![2]]);
    }

    #[test]
    fn lemma_1_merge_preserves_bounds() {
        // Two segments of the same configuration: merging changes no bound.
        let u = Aggregate::new(vec![5, 3, 1], 5);
        let v = Aggregate::new(vec![8, 4, 2], 8);
        let separate = Ossm::from_aggregates(vec![u.clone(), v.clone()]);
        let merged = Ossm::from_aggregates(vec![u.merged(&v)]);
        for mask in 1u32..8 {
            let items: Vec<u32> = (0..3).filter(|&i| mask & (1 << i) != 0).collect();
            let x = set(&items);
            assert_eq!(
                separate.upper_bound(&x),
                merged.upper_bound(&x),
                "itemset {x}"
            );
        }
    }

    #[test]
    fn merging_different_configurations_can_lose_accuracy() {
        // Section 4.2's swap argument: segments (x ≥ y) and (y ≥ x).
        let u = Aggregate::new(vec![3, 1], 3);
        let v = Aggregate::new(vec![1, 3], 3);
        let separate = Ossm::from_aggregates(vec![u.clone(), v.clone()]);
        let merged = Ossm::from_aggregates(vec![u.merged(&v)]);
        let x = set(&[0, 1]);
        assert_eq!(separate.upper_bound(&x), 2);
        assert_eq!(merged.upper_bound(&x), 4, "merged bound is strictly looser");
    }

    #[test]
    fn rearranged_dataset_groups_segments_contiguously() {
        let d = example_2_dataset();
        let min = minimize_segments(&d);
        let r = min.rearranged_dataset(&d);
        // Segment 0 ({a}-configurations: t1..t4) first, then segment 1.
        assert_eq!(r.transaction(0), &set(&[0]));
        assert_eq!(r.transaction(3), &set(&[0]));
        assert_eq!(r.transaction(4), &set(&[1]));
        assert_eq!(r.transaction(5), &set(&[1]));
        // Same multiset of transactions: supports unchanged.
        assert_eq!(r.support(&set(&[0, 1])), d.support(&set(&[0, 1])));
        assert_eq!(r.len(), d.len());
    }

    #[test]
    fn exactness_violation_reports_are_sound() {
        let d = Dataset::new(2, vec![set(&[0]), set(&[1])]);
        // Single segment: ub({0,1}) = min(1,1) = 1, actual 0.
        let one = Ossm::from_transaction_assignment(&d, &[0, 0], 1);
        assert_eq!(exactness_violations(&one, &d), vec![set(&[0, 1])]);
        assert_eq!(one.singleton_support(ItemId(0)), 1);
    }
}
