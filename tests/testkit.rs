//! Shared helpers for the randomized integration tests.
//!
//! These suites were originally written against `proptest`; offline
//! builds replace generated strategies with explicit seeded loops over
//! the in-repo `rand` shim. Each case derives its generator from
//! (`SUITE_SALT`, case index), so failures reproduce exactly and suites
//! don't share streams.

#![allow(dead_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ossm_data::{Dataset, Itemset};

/// Deterministic per-case generator: `salt` names the property, `case`
/// the iteration.
pub fn case_rng(salt: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(case))
}

/// The itemset `{i : bit i of mask set}` over `m` items.
pub fn mask_itemset(m: usize, mask: u32) -> Itemset {
    Itemset::new((0..m as u32).filter(|&i| mask & (1 << i) != 0))
}

/// A random dataset of `n_lo..n_hi` transactions over `m_lo..=m_hi`
/// items, each transaction a uniform non-empty subset mask (or possibly
/// empty when `allow_empty`).
pub fn random_dataset(
    rng: &mut StdRng,
    m_lo: usize,
    m_hi: usize,
    n_lo: usize,
    n_hi: usize,
    allow_empty: bool,
) -> Dataset {
    let m = rng.gen_range(m_lo..=m_hi);
    let n = rng.gen_range(n_lo..n_hi);
    let min_mask = u32::from(!allow_empty);
    let transactions = (0..n)
        .map(|_| mask_itemset(m, rng.gen_range(min_mask..(1u32 << m))))
        .collect();
    Dataset::new(m, transactions)
}
