//! The classical Apriori algorithm (Agrawal–Srikant), the miner the paper's
//! evaluation is built on.
//!
//! Level-wise search: frequent singletons seed candidate 2-itemsets, each
//! level's candidates are the join of the previous level's frequent sets
//! pruned by downward closure, and every surviving candidate is counted
//! against the data. The [`CandidateFilter`] hook applies equation (1)
//! *between* candidate generation and counting — the paper's "Apriori with
//! the OSSM" is `mine_filtered(…, &OssmFilter::new(&ossm))` and its
//! baseline is `mine(…)`.

use std::time::Instant;

use ossm_data::{Dataset, ItemId, Itemset};

use crate::filter::{CandidateFilter, NoFilter};
use crate::metrics::{LevelMetrics, MiningMetrics};
use crate::obs;
use crate::support::{count_with, CountingBackend, FrequentPatterns};

/// A mining result: the frequent patterns plus run metrics.
#[derive(Clone, Debug)]
pub struct MiningOutcome {
    /// All frequent patterns with exact supports.
    pub patterns: FrequentPatterns,
    /// Candidate bookkeeping and timing.
    pub metrics: MiningMetrics,
}

/// Apriori configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Apriori {
    backend: CountingBackend,
    /// Stop after this level if set (e.g. `Some(2)` mines only 1- and
    /// 2-itemsets, useful for candidate-2 experiments).
    max_len: Option<usize>,
}

impl Apriori {
    /// Apriori with the linear-scan counting back-end.
    pub fn new() -> Self {
        Apriori::default()
    }

    /// Selects the counting back-end.
    pub fn with_backend(mut self, backend: CountingBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Limits the maximum pattern length mined.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        assert!(max_len > 0, "maximum pattern length must be positive");
        self.max_len = Some(max_len);
        self
    }

    /// Mines all frequent itemsets at absolute threshold `min_support`
    /// without any candidate filter (the "without the OSSM" baseline).
    pub fn mine(&self, dataset: &Dataset, min_support: u64) -> MiningOutcome {
        self.mine_filtered(dataset, min_support, &NoFilter)
    }

    /// Mines all frequent itemsets, filtering candidates through `filter`
    /// before counting.
    ///
    /// # Panics
    /// Panics if `min_support == 0` (every subset of every transaction
    /// would be "frequent").
    pub fn mine_filtered(
        &self,
        dataset: &Dataset,
        min_support: u64,
        filter: &dyn CandidateFilter,
    ) -> MiningOutcome {
        assert!(min_support > 0, "support threshold must be at least 1");
        let _mine_span = ossm_obs::span("mining.apriori");
        let start = Instant::now();
        let mut patterns = FrequentPatterns::new();
        let mut metrics = MiningMetrics::default();

        // Level 1: every singleton is a candidate; the filter may discharge
        // some before the counting pass (an OSSM's singleton bounds are
        // exact, so this costs no accuracy).
        let m = dataset.num_items();
        let mut level = LevelMetrics {
            level: 1,
            generated: m as u64,
            ..Default::default()
        };
        let mut frequent: Vec<Itemset> = Vec::new();
        {
            let _level_span = ossm_obs::span("mining.apriori.level1");
            let survivors: Vec<ItemId> = {
                let _s = ossm_obs::span("mining.apriori.prune");
                (0..m as u32)
                    .map(ItemId)
                    .filter(|&i| filter.may_be_frequent(&Itemset::singleton(i), min_support))
                    .collect()
            };
            level.filtered_out = m as u64 - survivors.len() as u64;
            level.counted = survivors.len() as u64;
            let _count_span = ossm_obs::span("mining.apriori.count");
            let all_supports = dataset.singleton_supports();
            for item in survivors {
                let sup = all_supports[item.index()];
                obs::record_bound_outcome(filter, &Itemset::singleton(item), sup, min_support);
                if sup >= min_support {
                    frequent.push(Itemset::singleton(item));
                    patterns.insert(Itemset::singleton(item), sup);
                }
            }
        }
        level.frequent = frequent.len() as u64;
        obs::record_level("apriori", &level);
        metrics.push_level(level);

        // Levels 2..: join, prune, filter, count.
        let mut k = 2;
        while !frequent.is_empty() && self.max_len.map_or(true, |max| k <= max) {
            let mut level_span = ossm_obs::span(format!("mining.apriori.level{k}"));
            let generated = {
                let _s = ossm_obs::span("mining.apriori.gen");
                generate_candidates(&frequent)
            };
            if generated.is_empty() {
                break;
            }
            let mut level = LevelMetrics {
                level: k,
                generated: generated.len() as u64,
                ..Default::default()
            };
            let candidates: Vec<Itemset> = {
                let _s = ossm_obs::span("mining.apriori.prune");
                generated
                    .into_iter()
                    .filter(|c| filter.may_be_frequent(c, min_support))
                    .collect()
            };
            level.filtered_out = level.generated - candidates.len() as u64;
            level.counted = candidates.len() as u64;
            let counts = {
                let mut s = ossm_obs::span("mining.apriori.count");
                s.attach("candidates", candidates.len() as u64);
                count_with(self.backend, dataset.transactions(), &candidates)
            };
            let mut next = Vec::new();
            for (c, sup) in candidates.into_iter().zip(counts) {
                obs::record_bound_outcome(filter, &c, sup, min_support);
                if sup >= min_support {
                    patterns.insert(c.clone(), sup);
                    next.push(c);
                }
            }
            level.frequent = next.len() as u64;
            level_span.attach("generated", level.generated);
            level_span.attach("frequent", level.frequent);
            obs::record_level("apriori", &level);
            metrics.push_level(level);
            frequent = next;
            k += 1;
        }

        metrics.elapsed = start.elapsed();
        MiningOutcome { patterns, metrics }
    }
}

/// The Apriori candidate generation (`apriori-gen`): joins `k`-itemsets
/// sharing their first `k − 1` items, then prunes candidates with an
/// infrequent `k`-subset. `frequent` must be the complete frequent set of
/// one level; the output is sorted and duplicate-free.
pub fn generate_candidates(frequent: &[Itemset]) -> Vec<Itemset> {
    if frequent.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<&Itemset> = frequent.iter().collect();
    sorted.sort();
    let lookup: std::collections::HashSet<&Itemset> = sorted.iter().copied().collect();
    let mut out = Vec::new();
    // Itemsets sharing a (k−1)-prefix are adjacent once sorted.
    for i in 0..sorted.len() {
        for j in (i + 1)..sorted.len() {
            match sorted[i].apriori_join(sorted[j]) {
                Some(candidate) => {
                    // Downward-closure prune: every k-subset must be frequent.
                    if candidate.proper_subsets().all(|s| lookup.contains(&s)) {
                        out.push(candidate);
                    }
                }
                None => break, // prefix changed; later j cannot match either
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::OssmFilter;
    use ossm_core::minimize_segments;
    use ossm_data::gen::QuestConfig;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    /// The textbook 9-transaction example.
    fn small_dataset() -> Dataset {
        Dataset::new(
            5,
            vec![
                set(&[0, 1, 4]),
                set(&[1, 3]),
                set(&[1, 2]),
                set(&[0, 1, 3]),
                set(&[0, 2]),
                set(&[1, 2]),
                set(&[0, 2]),
                set(&[0, 1, 2, 4]),
                set(&[0, 1, 2]),
            ],
        )
    }

    #[test]
    fn mines_the_textbook_example() {
        let out = Apriori::new().mine(&small_dataset(), 2);
        let p = &out.patterns;
        assert_eq!(p.support_of(&set(&[0])), Some(6));
        assert_eq!(p.support_of(&set(&[1])), Some(7));
        assert_eq!(p.support_of(&set(&[0, 1])), Some(4));
        assert_eq!(p.support_of(&set(&[0, 1, 2])), Some(2));
        assert_eq!(p.support_of(&set(&[0, 1, 4])), Some(2));
        assert_eq!(p.len(), 13, "the classic example has 13 frequent itemsets");
        assert!(p.closure_violation().is_none());
    }

    #[test]
    fn results_match_brute_force_on_generated_data() {
        let d = QuestConfig {
            num_transactions: 250,
            num_items: 12,
            num_patterns: 8,
            avg_transaction_len: 4.0,
            ..QuestConfig::small()
        }
        .generate();
        let min_support = 10;
        let out = Apriori::new().mine(&d, min_support);
        // Brute force over all non-empty itemsets of the 12-item domain.
        let mut expected = FrequentPatterns::new();
        for mask in 1u32..(1 << 12) {
            let x = set(&(0..12u32)
                .filter(|&i| mask & (1 << i) != 0)
                .collect::<Vec<_>>());
            let sup = d.support(&x);
            if sup >= min_support {
                expected.insert(x, sup);
            }
        }
        assert_eq!(out.patterns, expected);
    }

    #[test]
    fn hash_tree_backend_agrees_with_linear() {
        let d = QuestConfig {
            num_transactions: 300,
            num_items: 40,
            ..QuestConfig::small()
        }
        .generate();
        let a = Apriori::new().mine(&d, 8);
        let b = Apriori::new()
            .with_backend(CountingBackend::HashTree)
            .mine(&d, 8);
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.metrics.total_counted(), b.metrics.total_counted());
    }

    #[test]
    fn ossm_filter_changes_counts_not_results() {
        let d = QuestConfig {
            num_transactions: 200,
            num_items: 30,
            ..QuestConfig::small()
        }
        .generate();
        let min = minimize_segments(&d);
        let plain = Apriori::new().mine(&d, 6);
        let filtered = Apriori::new().mine_filtered(&d, 6, &OssmFilter::new(&min.ossm));
        assert_eq!(
            plain.patterns, filtered.patterns,
            "filtering must be lossless"
        );
        assert!(
            filtered.metrics.total_counted() <= plain.metrics.total_counted(),
            "the OSSM can only reduce counting work"
        );
        // The exact OSSM filters every infrequent candidate: counted equals
        // frequent at every level ≥ 2.
        for l in &filtered.metrics.levels {
            if l.level >= 2 {
                assert_eq!(l.counted, l.frequent, "level {}", l.level);
            }
        }
    }

    #[test]
    fn max_len_limits_the_search() {
        let out = Apriori::new().with_max_len(2).mine(&small_dataset(), 2);
        assert_eq!(out.patterns.max_len(), 2);
        assert!(out.metrics.level(3).is_none());
    }

    #[test]
    fn generate_candidates_joins_and_prunes() {
        // L2 = {01, 02, 12, 13}: join gives 012 (kept: all subsets present)
        // and 123 (pruned: {2,3} missing).
        let l2 = vec![set(&[0, 1]), set(&[0, 2]), set(&[1, 2]), set(&[1, 3])];
        assert_eq!(generate_candidates(&l2), vec![set(&[0, 1, 2])]);
        assert!(generate_candidates(&[]).is_empty());
        // Singletons join into all pairs.
        let l1 = vec![set(&[3]), set(&[1]), set(&[2])];
        let c2 = generate_candidates(&l1);
        assert_eq!(c2, vec![set(&[1, 2]), set(&[1, 3]), set(&[2, 3])]);
    }

    #[test]
    fn threshold_above_data_yields_nothing() {
        let out = Apriori::new().mine(&small_dataset(), 100);
        assert!(out.patterns.is_empty());
        assert_eq!(out.metrics.total_frequent(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_is_rejected() {
        Apriori::new().mine(&small_dataset(), 0);
    }

    #[test]
    fn metrics_track_candidate_flow() {
        let out = Apriori::new().mine(&small_dataset(), 2);
        let l1 = out.metrics.level(1).unwrap();
        assert_eq!(l1.generated, 5);
        assert_eq!(l1.frequent, 5);
        let l2 = out.metrics.level(2).unwrap();
        assert_eq!(l2.generated, 10, "all pairs of 5 frequent singletons");
        assert_eq!(l2.counted, 10, "no filter → all counted");
        assert_eq!(l2.frequent, 6);
    }
}
