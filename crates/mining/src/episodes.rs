//! Serial-episode discovery over windowed event sequences (WINEPI-style).
//!
//! The paper's introduction claims the OSSM serves "the mining of any of
//! the above classes of patterns", explicitly including episodes [13].
//! `ossm-data::sequence` already covers *parallel* episodes (unordered —
//! they reduce to itemsets over windows). This module adds **serial
//! episodes**: sequences of event types that must occur *in order* inside
//! a window, mined level-wise à la Mannila–Toivonen–Verkamo.
//!
//! The OSSM hook rests on one observation: a window containing the serial
//! episode `A → B → C` certainly contains the *set* `{A, B, C}`, so
//!
//! ```text
//! sup(serial episode e) ≤ sup(itemset set(e)) ≤ ub(set(e), OSSM)
//! ```
//!
//! — the itemset OSSM upper-bounds serial-episode supports too, and
//! pruning with it is sound. (For episodes with repeated types, `set(e)`
//! simply collapses duplicates; the inequality still holds.)

use std::collections::HashSet;
use std::time::Instant;

use ossm_core::Ossm;
use ossm_data::{Dataset, Itemset};

use crate::metrics::{LevelMetrics, MiningMetrics};

/// A serial episode: event types that must occur in this order within one
/// window. Types may repeat (`A → B → A`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SerialEpisode {
    types: Vec<u32>,
}

impl SerialEpisode {
    /// Builds an episode from the ordered event types.
    pub fn new(types: Vec<u32>) -> Self {
        assert!(
            !types.is_empty(),
            "an episode needs at least one event type"
        );
        SerialEpisode { types }
    }

    /// The ordered event types.
    pub fn types(&self) -> &[u32] {
        &self.types
    }

    /// Episode length.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the episode is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The episode's type *set* (duplicates collapsed) — the itemset whose
    /// OSSM bound dominates this episode's support.
    pub fn type_set(&self) -> Itemset {
        Itemset::new(self.types.iter().copied())
    }

    /// Whether `window` (a time-ordered list of event types) contains the
    /// episode as a subsequence.
    pub fn occurs_in(&self, window: &[u32]) -> bool {
        let mut need = self.types.iter();
        let mut next = need.next();
        for &t in window {
            match next {
                Some(&n) if n == t => next = need.next(),
                Some(_) => {}
                None => break,
            }
        }
        next.is_none()
    }
}

impl std::fmt::Display for SerialEpisode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, t) in self.types.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// The windows a serial-episode miner searches: each is the time-ordered
/// list of event types inside one window (duplicates and order preserved,
/// unlike the itemset view).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowLog {
    num_types: usize,
    windows: Vec<Vec<u32>>,
}

impl WindowLog {
    /// Builds a log over event types `0..num_types`.
    ///
    /// # Panics
    /// Panics if a window references a type outside the domain.
    pub fn new(num_types: usize, windows: Vec<Vec<u32>>) -> Self {
        for w in &windows {
            for &t in w {
                assert!(
                    (t as usize) < num_types,
                    "event type {t} outside 0..{num_types}"
                );
            }
        }
        WindowLog { num_types, windows }
    }

    /// Cuts an event sequence into ordered windows (the serial counterpart
    /// of [`ossm_data::sequence::EventSequence::windows`]).
    pub fn from_sequence(seq: &ossm_data::sequence::EventSequence, width: u64, step: u64) -> Self {
        assert!(width > 0 && step > 0);
        let Some((first, last)) = seq.span() else {
            return WindowLog {
                num_types: seq.num_kinds(),
                windows: Vec::new(),
            };
        };
        let events = seq.events();
        let mut windows = Vec::new();
        let mut start = first;
        let mut lo = 0usize;
        loop {
            while lo < events.len() && events[lo].time < start {
                lo += 1;
            }
            let mut w = Vec::new();
            let mut i = lo;
            while i < events.len() && events[i].time < start + width {
                w.push(events[i].kind);
                i += 1;
            }
            windows.push(w);
            if start > last {
                break;
            }
            start += step;
        }
        if windows.len() > 1 {
            windows.pop();
        }
        WindowLog {
            num_types: seq.num_kinds(),
            windows,
        }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the log has no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The item-domain size.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// The windows.
    pub fn windows(&self) -> &[Vec<u32>] {
        &self.windows
    }

    /// The itemset view of the log (each window's distinct types) — what
    /// the OSSM is built over.
    pub fn to_dataset(&self) -> Dataset {
        Dataset::new(
            self.num_types,
            self.windows
                .iter()
                .map(|w| Itemset::new(w.iter().copied()))
                .collect(),
        )
    }

    /// Exact support of an episode: the number of windows containing it.
    pub fn support(&self, episode: &SerialEpisode) -> u64 {
        self.windows.iter().filter(|w| episode.occurs_in(w)).count() as u64
    }
}

/// Result of a serial-episode mining run.
#[derive(Clone, Debug)]
pub struct EpisodeOutcome {
    /// Frequent episodes with their window supports, sorted.
    pub episodes: Vec<(SerialEpisode, u64)>,
    /// Candidate bookkeeping (level = episode length).
    pub metrics: MiningMetrics,
}

/// Level-wise serial-episode miner with optional OSSM pruning.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialEpisodeMiner {
    /// Stop at episodes of this length, if set.
    pub max_len: Option<usize>,
}

impl SerialEpisodeMiner {
    /// A miner with no length limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Limits the maximum episode length.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        assert!(max_len > 0);
        self.max_len = Some(max_len);
        self
    }

    /// Mines all serial episodes occurring in at least `min_support`
    /// windows. With `ossm: Some(_)`, a candidate is counted only if the
    /// OSSM bound of its *type set* reaches the threshold (sound; see
    /// module docs).
    ///
    /// # Panics
    /// Panics if `min_support == 0`.
    pub fn mine(&self, log: &WindowLog, min_support: u64, ossm: Option<&Ossm>) -> EpisodeOutcome {
        assert!(min_support > 0, "support threshold must be at least 1");
        let start = Instant::now();
        let mut metrics = MiningMetrics::default();
        let mut out: Vec<(SerialEpisode, u64)> = Vec::new();

        // Level 1: single event types.
        let m = log.num_types();
        let mut counts = vec![0u64; m];
        for w in log.windows() {
            let mut seen = HashSet::new();
            for &t in w {
                if seen.insert(t) {
                    counts[t as usize] += 1;
                }
            }
        }
        let mut frequent: Vec<SerialEpisode> = Vec::new();
        let mut level1 = LevelMetrics {
            level: 1,
            generated: m as u64,
            counted: m as u64,
            ..Default::default()
        };
        for t in 0..m as u32 {
            if counts[t as usize] >= min_support {
                let e = SerialEpisode::new(vec![t]);
                out.push((e.clone(), counts[t as usize]));
                frequent.push(e);
            }
        }
        level1.frequent = frequent.len() as u64;
        metrics.push_level(level1);

        // Level k: candidates are e1 ++ last(e2) where e1's suffix (k−1
        // types minus its head) equals e2's prefix — the standard serial
        // join. Equivalent, simpler formulation used here: frequent (k−1)
        // episode extended by every frequent single type (then pruned by
        // the subsequence-closure check on its two maximal sub-episodes).
        let mut k = 2;
        while !frequent.is_empty() && self.max_len.map_or(true, |max| k <= max) {
            let singles: Vec<u32> = out
                .iter()
                .filter(|(e, _)| e.len() == 1)
                .map(|(e, _)| e.types()[0])
                .collect();
            let prev: HashSet<&SerialEpisode> = frequent.iter().collect();
            let mut generated: Vec<SerialEpisode> = Vec::new();
            for e in &frequent {
                for &t in &singles {
                    let mut types = e.types().to_vec();
                    types.push(t);
                    let cand = SerialEpisode::new(types);
                    // Closure prune: dropping the head must leave a
                    // frequent (k−1)-episode too (dropping the tail gives
                    // `e`, frequent by construction).
                    let tail = SerialEpisode::new(cand.types()[1..].to_vec());
                    if prev.contains(&tail) {
                        generated.push(cand);
                    }
                }
            }
            let mut level = LevelMetrics {
                level: k,
                generated: generated.len() as u64,
                ..Default::default()
            };
            let candidates: Vec<SerialEpisode> = match ossm {
                Some(map) => generated
                    .into_iter()
                    .filter(|c| map.upper_bound(&c.type_set()) >= min_support)
                    .collect(),
                None => generated,
            };
            level.filtered_out = level.generated - candidates.len() as u64;
            level.counted = candidates.len() as u64;

            let mut next = Vec::new();
            for c in candidates {
                let sup = log.support(&c);
                if sup >= min_support {
                    out.push((c.clone(), sup));
                    next.push(c);
                }
            }
            level.frequent = next.len() as u64;
            metrics.push_level(level);
            frequent = next;
            k += 1;
        }

        out.sort();
        metrics.elapsed = start.elapsed();
        EpisodeOutcome {
            episodes: out,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossm_data::PageStore;

    fn log(windows: &[&[u32]]) -> WindowLog {
        let m = windows
            .iter()
            .flat_map(|w| w.iter())
            .max()
            .map_or(1, |&t| t as usize + 1);
        WindowLog::new(m, windows.iter().map(|w| w.to_vec()).collect())
    }

    #[test]
    fn occurs_in_respects_order_and_repeats() {
        let e = SerialEpisode::new(vec![1, 2]);
        assert!(e.occurs_in(&[1, 3, 2]));
        assert!(!e.occurs_in(&[2, 1]), "order matters");
        assert!(!e.occurs_in(&[1]), "incomplete");
        let rep = SerialEpisode::new(vec![1, 1]);
        assert!(rep.occurs_in(&[1, 2, 1]));
        assert!(!rep.occurs_in(&[1, 2]));
        assert_eq!(rep.type_set().len(), 1, "type set collapses repeats");
    }

    #[test]
    fn mines_ordered_episodes_only() {
        // 1 → 2 in 3 windows; 2 → 1 in only 1.
        let l = log(&[&[1, 2], &[1, 0, 2], &[1, 2], &[2, 1]]);
        let out = SerialEpisodeMiner::new().mine(&l, 3, None);
        let e12 = SerialEpisode::new(vec![1, 2]);
        let e21 = SerialEpisode::new(vec![2, 1]);
        assert!(out.episodes.contains(&(e12.clone(), 3)));
        assert!(!out.episodes.iter().any(|(e, _)| e == &e21));
        assert_eq!(l.support(&e21), 1);
    }

    #[test]
    fn supports_are_window_counts() {
        let l = log(&[&[0, 1, 2], &[0, 2], &[2, 0]]);
        let out = SerialEpisodeMiner::new().mine(&l, 1, None);
        for (e, s) in &out.episodes {
            assert_eq!(*s, l.support(e), "support mismatch for {e}");
            assert!(*s >= 1);
        }
        // 0 → 2 occurs in windows 1 and 2 (not in [2,0]).
        assert_eq!(l.support(&SerialEpisode::new(vec![0, 2])), 2);
    }

    #[test]
    fn ossm_pruning_is_lossless_for_episodes() {
        // Bursty log: kinds 0→1 fire in order in the first half, 2→3 in
        // the second.
        let mut windows: Vec<Vec<u32>> = Vec::new();
        for i in 0..200u32 {
            if i < 100 {
                windows.push(vec![0, 4 + (i % 3), 1]);
            } else {
                windows.push(vec![2, 4 + (i % 3), 3]);
            }
        }
        let l = WindowLog::new(7, windows);
        let d = l.to_dataset();
        let store = PageStore::with_page_count(d, 10);
        let (ossm, _) = ossm_core::OssmBuilder::new(4).build(&store);

        let plain = SerialEpisodeMiner::new().mine(&l, 20, None);
        let pruned = SerialEpisodeMiner::new().mine(&l, 20, Some(&ossm));
        assert_eq!(
            plain.episodes, pruned.episodes,
            "OSSM changed episode results"
        );
        assert!(
            pruned.metrics.total_counted() < plain.metrics.total_counted(),
            "cross-burst episodes like 0→2 should be OSSM-pruned before counting"
        );
        assert!(plain
            .episodes
            .contains(&(SerialEpisode::new(vec![0, 1]), 100)));
        assert!(!plain
            .episodes
            .iter()
            .any(|(e, _)| e == &SerialEpisode::new(vec![1, 0])));
    }

    #[test]
    fn max_len_limits_episode_length() {
        let w: &[u32] = &[0, 1, 2];
        let l = log(&[w; 5]);
        let out = SerialEpisodeMiner::new().with_max_len(2).mine(&l, 5, None);
        assert!(out.episodes.iter().all(|(e, _)| e.len() <= 2));
    }

    #[test]
    fn window_log_from_sequence_preserves_order() {
        use ossm_data::sequence::{Event, EventSequence};
        let seq = EventSequence::new(
            3,
            vec![
                Event { time: 0, kind: 2 },
                Event { time: 1, kind: 0 },
                Event { time: 5, kind: 1 },
            ],
        );
        let l = WindowLog::from_sequence(&seq, 3, 3);
        assert_eq!(
            l.windows()[0],
            vec![2, 0],
            "event order inside the window is kept"
        );
        // The itemset view agrees with the unordered windowing.
        assert_eq!(l.to_dataset().len(), l.len());
    }

    #[test]
    fn empty_log_yields_nothing() {
        let l = WindowLog::new(3, vec![]);
        let out = SerialEpisodeMiner::new().mine(&l, 1, None);
        assert!(out.episodes.is_empty());
    }
}
