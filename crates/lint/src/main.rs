//! CLI for `ossm-lint`.
//!
//! ```text
//! cargo run -p ossm-lint -- --all                 # lint the workspace
//! cargo run -p ossm-lint -- --all --json          # JSON lines to stdout
//! cargo run -p ossm-lint -- --all --json=out.json # JSON report to a file
//! cargo run -p ossm-lint -- --fixture <file.rs>   # lint one fixture
//! cargo run -p ossm-lint -- --check-fixtures      # all seeded fixtures fire
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or a fixture whose expected rule did
//! not fire), 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ossm_lint::diag::{json_report, Diagnostic};
use ossm_lint::{lint_all, lint_fixture, workspace};

enum Mode {
    All,
    Fixture(PathBuf),
    CheckFixtures,
}

struct Args {
    mode: Mode,
    json: bool,
    json_path: Option<PathBuf>,
    root: Option<PathBuf>,
}

const USAGE: &str = "usage: ossm-lint (--all | --fixture <file.rs> | --check-fixtures) \
                     [--json[=PATH]] [--root=PATH]";

fn parse_args() -> Result<Args, String> {
    let mut mode = None;
    let mut json = false;
    let mut json_path = None;
    let mut root = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--all" => mode = Some(Mode::All),
            "--check-fixtures" => mode = Some(Mode::CheckFixtures),
            "--fixture" => {
                let path = argv.next().ok_or("--fixture needs a path")?;
                mode = Some(Mode::Fixture(PathBuf::from(path)));
            }
            "--json" => json = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            _ => {
                if let Some(p) = arg.strip_prefix("--fixture=") {
                    mode = Some(Mode::Fixture(PathBuf::from(p)));
                } else if let Some(p) = arg.strip_prefix("--json=") {
                    json = true;
                    json_path = Some(PathBuf::from(p));
                } else if let Some(p) = arg.strip_prefix("--root=") {
                    root = Some(PathBuf::from(p));
                } else {
                    return Err(format!("unknown argument {arg:?}\n{USAGE}"));
                }
            }
        }
    }
    let mode = mode.ok_or(USAGE)?;
    Ok(Args {
        mode,
        json,
        json_path,
        root,
    })
}

fn resolve_root(args: &Args) -> Result<PathBuf, String> {
    if let Some(root) = &args.root {
        return Ok(root.clone());
    }
    let cwd = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
    workspace::find_root(&cwd).ok_or_else(|| "no workspace root above the current dir".to_owned())
}

fn emit(args: &Args, diags: &[Diagnostic], allowlisted: usize, files: usize) -> Result<(), String> {
    if args.json {
        let report = json_report(diags, allowlisted, files);
        match &args.json_path {
            Some(path) => {
                std::fs::write(path, &report)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                for d in diags {
                    println!("{}", d.human());
                }
            }
            None => print!("{report}"),
        }
    } else {
        for d in diags {
            println!("{}", d.human());
        }
    }
    if !args.json || args.json_path.is_some() {
        println!(
            "ossm-lint: {} violation(s), {} allowlisted, {} file(s) scanned",
            diags.len(),
            allowlisted,
            files
        );
    }
    Ok(())
}

fn run(args: &Args) -> Result<bool, String> {
    match &args.mode {
        Mode::All => {
            let root = resolve_root(args)?;
            let out = lint_all(&root)?;
            emit(args, &out.diags, out.allowlisted, out.files_scanned)?;
            Ok(out.diags.is_empty())
        }
        Mode::Fixture(path) => {
            let root = resolve_root(args)?;
            let out = lint_fixture(&root, path)?;
            emit(args, &out.diags, 0, 1)?;
            // A fixture "fails" (exit 1) exactly when its seeded violation
            // is detected — that is the behavior CI asserts on.
            Ok(out.diags.is_empty())
        }
        Mode::CheckFixtures => {
            let root = resolve_root(args)?;
            let dir = root.join("crates/lint/fixtures");
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
                .map_err(|e| format!("reading {}: {e}", dir.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                .collect();
            entries.sort();
            let mut all_fired = true;
            for path in &entries {
                let out = lint_fixture(&root, path)?;
                let name = relative(path, &root);
                if out.passed() {
                    println!("ossm-lint: {name}: expected {:?} fired", out.expected);
                } else {
                    all_fired = false;
                    println!(
                        "ossm-lint: {name}: expected {:?} but {:?} did NOT fire",
                        out.expected,
                        out.missing()
                    );
                }
            }
            if entries.is_empty() {
                return Err(format!("no fixtures in {}", dir.display()));
            }
            Ok(all_fired)
        }
    }
}

fn relative(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("ossm-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
