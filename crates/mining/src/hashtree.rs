//! The classical Apriori hash tree for candidate counting.
//!
//! Candidates of size `k` are stored in a tree whose interior nodes hash
//! the candidate's next item into a fixed fan-out; leaves hold candidate
//! lists and split when they overflow. Counting a transaction walks every
//! hash path its items can form, reaching only leaves that can contain
//! subsets of the transaction — far fewer subset tests than the linear
//! scan when the candidate set is large.
//!
//! Because a leaf can be reached through several item positions of one
//! transaction, candidates carry a last-seen transaction stamp so each is
//! tested at most once per transaction.

use ossm_data::{ItemId, Itemset};

/// Fan-out of interior nodes. Sized for the paper's m = 1000 domains: with
/// a fan-out of `f`, the (at most) `k`-deep tree spreads `C_k` candidates
/// over up to `f^k` leaf cells, so pair trees at f = 64 keep collision
/// leaves to a few dozen candidates even for ~100 k candidates.
const FANOUT: usize = 64;
/// A leaf splits when it exceeds this many candidates (unless the tree is
/// already at maximum depth for the candidate size).
const LEAF_CAPACITY: usize = 24;

/// Bytes of the most recently built hash tree (interior fan-out tables,
/// leaf lists, and the cloned candidate group) — the space this back-end
/// trades for fewer subset tests.
static MEM_HASHTREE: ossm_obs::Gauge = ossm_obs::Gauge::new("mem.mining.hashtree");

#[inline]
fn bucket(item: ItemId) -> usize {
    item.index() % FANOUT
}

enum Node {
    Interior(Vec<Option<Node>>),
    Leaf(Vec<usize>),
}

impl Node {
    fn new_leaf() -> Node {
        Node::Leaf(Vec::new())
    }
}

/// A hash tree over candidates of uniform size `k`.
pub struct HashTree<'a> {
    candidates: &'a [Itemset],
    k: usize,
    root: Node,
}

impl<'a> HashTree<'a> {
    /// Builds the tree.
    ///
    /// # Panics
    /// Panics if candidates are not all of the same non-zero size.
    pub fn build(candidates: &'a [Itemset]) -> Self {
        let k = candidates.first().map_or(1, Itemset::len);
        assert!(k > 0, "hash tree candidates must be non-empty itemsets");
        assert!(
            candidates.iter().all(|c| c.len() == k),
            "hash tree candidates must share one size"
        );
        let mut tree = HashTree {
            candidates,
            k,
            root: Node::new_leaf(),
        };
        for idx in 0..candidates.len() {
            Self::insert(&mut tree.root, candidates, k, idx, 0);
        }
        tree
    }

    /// Estimated resident bytes of the tree structure: fan-out tables of
    /// interior nodes plus leaf candidate lists. Deterministic for a
    /// given candidate group (insertion order is fixed).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Node>() + Self::node_bytes(&self.root)
    }

    fn node_bytes(node: &Node) -> usize {
        match node {
            Node::Interior(children) => {
                children.len() * std::mem::size_of::<Option<Node>>()
                    + children
                        .iter()
                        .flatten()
                        .map(Self::node_bytes)
                        .sum::<usize>()
            }
            Node::Leaf(list) => list.len() * std::mem::size_of::<usize>(),
        }
    }

    fn insert(node: &mut Node, candidates: &[Itemset], k: usize, idx: usize, depth: usize) {
        match node {
            Node::Interior(children) => {
                let b = bucket(candidates[idx].items()[depth]);
                let child = children[b].get_or_insert_with(Node::new_leaf);
                Self::insert(child, candidates, k, idx, depth + 1);
            }
            Node::Leaf(list) => {
                list.push(idx);
                // Split an overflowing leaf unless we have consumed all k
                // items already (then collisions must simply share a leaf).
                if list.len() > LEAF_CAPACITY && depth < k {
                    let moved = std::mem::take(list);
                    let mut children: Vec<Option<Node>> = (0..FANOUT).map(|_| None).collect();
                    for m in moved {
                        let b = bucket(candidates[m].items()[depth]);
                        let child = children[b].get_or_insert_with(Node::new_leaf);
                        Self::insert(child, candidates, k, m, depth + 1);
                    }
                    *node = Node::Interior(children);
                }
            }
        }
    }

    /// Adds each candidate's occurrences in `transactions` to `counts`.
    pub fn count(&self, transactions: &[Itemset], counts: &mut [u64]) {
        assert_eq!(counts.len(), self.candidates.len());
        // Per-candidate stamp of the last transaction that tested it, to
        // avoid double counting on convergent hash paths. Stamps start at
        // u64::MAX ( != any tid).
        let mut last_seen = vec![u64::MAX; self.candidates.len()];
        for (tid, t) in transactions.iter().enumerate() {
            if t.len() < self.k {
                continue;
            }
            self.visit(&self.root, t, 0, tid as u64, &mut last_seen, counts);
        }
    }

    fn visit(
        &self,
        node: &Node,
        t: &Itemset,
        start: usize,
        tid: u64,
        last_seen: &mut [u64],
        counts: &mut [u64],
    ) {
        match node {
            Node::Leaf(list) => {
                for &idx in list {
                    if last_seen[idx] != tid {
                        last_seen[idx] = tid;
                        if self.candidates[idx].is_subset_of(t) {
                            counts[idx] += 1;
                        }
                    }
                }
            }
            Node::Interior(children) => {
                // Descend once per distinct usable item position.
                for (j, &item) in t.items().iter().enumerate().skip(start) {
                    if let Some(child) = &children[bucket(item)] {
                        self.visit(child, t, j + 1, tid, last_seen, counts);
                    }
                }
            }
        }
    }
}

/// Counts candidate supports with a hash tree, grouping mixed candidate
/// sizes into one tree per size. The drop-in alternative to
/// [`crate::support::count_linear`].
pub fn count_hash_tree(transactions: &[Itemset], candidates: &[Itemset]) -> Vec<u64> {
    let mut counts = vec![0u64; candidates.len()];
    if candidates.is_empty() {
        return counts;
    }
    // Group candidate indices by size.
    let mut by_len: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, c) in candidates.iter().enumerate() {
        by_len.entry(c.len()).or_default().push(i);
    }
    for (len, idxs) in by_len {
        if len == 0 {
            // The empty itemset occurs in every transaction.
            for &i in &idxs {
                counts[i] = transactions.len() as u64;
            }
            continue;
        }
        let group: Vec<Itemset> = idxs.iter().map(|&i| candidates[i].clone()).collect();
        let tree = HashTree::build(&group);
        MEM_HASHTREE.set(tree.memory_bytes() as u64 + crate::support::candidate_bytes(&group));
        // One shared tree, transaction-chunked counting: `count` keeps its
        // dedup stamps per call, so chunks are independent, and the partial
        // vectors merge by element-wise sum — identical at any thread count.
        let partials =
            ossm_par::map_chunks(transactions.len(), crate::support::MIN_TX_CHUNK, |r| {
                let mut part = vec![0u64; group.len()];
                tree.count(&transactions[r], &mut part);
                part
            });
        let group_counts = if partials.is_empty() {
            vec![0u64; group.len()]
        } else {
            ossm_par::sum_counts(partials)
        };
        for (&i, c) in idxs.iter().zip(group_counts) {
            counts[i] = c;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::count_linear;
    use ossm_data::gen::QuestConfig;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    #[test]
    fn counts_simple_pairs() {
        let txs = vec![set(&[0, 1, 2]), set(&[0, 2]), set(&[1, 2]), set(&[0, 1])];
        let cands = vec![set(&[0, 1]), set(&[0, 2]), set(&[1, 2]), set(&[0, 3])];
        let tree = HashTree::build(&cands);
        let mut counts = vec![0; cands.len()];
        tree.count(&txs, &mut counts);
        assert_eq!(counts, vec![2, 2, 2, 0]);
    }

    #[test]
    fn matches_linear_scan_on_generated_data() {
        let d = QuestConfig {
            num_transactions: 400,
            num_items: 60,
            ..QuestConfig::small()
        }
        .generate();
        // All pairs among items 0..40 → forces leaf splits and collisions.
        let mut cands = Vec::new();
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                cands.push(set(&[a, b]));
            }
        }
        assert_eq!(
            count_hash_tree(d.transactions(), &cands),
            count_linear(d.transactions(), &cands)
        );
    }

    #[test]
    fn matches_linear_scan_on_triples() {
        let d = QuestConfig {
            num_transactions: 300,
            num_items: 25,
            ..QuestConfig::small()
        }
        .generate();
        let mut cands = Vec::new();
        for a in 0..12u32 {
            for b in (a + 1)..12 {
                for c in (b + 1)..12 {
                    cands.push(set(&[a, b, c]));
                }
            }
        }
        assert_eq!(
            count_hash_tree(d.transactions(), &cands),
            count_linear(d.transactions(), &cands)
        );
    }

    #[test]
    fn handles_mixed_sizes_and_empty_inputs() {
        let txs = vec![set(&[0, 1]), set(&[1, 2])];
        let cands = vec![set(&[1]), set(&[0, 1]), Itemset::empty()];
        assert_eq!(count_hash_tree(&txs, &cands), vec![2, 1, 2]);
        assert_eq!(count_hash_tree(&txs, &[]), Vec::<u64>::new());
        assert_eq!(count_hash_tree(&[], &cands), vec![0, 0, 0]);
    }

    #[test]
    fn short_transactions_are_skipped_cheaply() {
        let txs = vec![set(&[0]), set(&[1])];
        let cands = vec![set(&[0, 1])];
        assert_eq!(count_hash_tree(&txs, &cands), vec![0]);
    }

    #[test]
    fn no_double_counting_on_convergent_paths() {
        // Items 0 and 64 share a bucket (64 % FANOUT == 0): a transaction
        // holding both reaches the same child twice. The stamp must keep
        // the count at 1.
        let txs = vec![set(&[0, 64, 128])];
        let mut cands = vec![set(&[0, 64]), set(&[0, 128]), set(&[64, 128])];
        // Pad to force a split at the root so interior traversal happens.
        for i in 0..40u32 {
            cands.push(set(&[300 + i, 400 + i]));
        }
        let counts = count_hash_tree(&txs, &cands);
        assert_eq!(&counts[..3], &[1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "share one size")]
    fn build_rejects_mixed_sizes() {
        HashTree::build(&[set(&[1]), set(&[1, 2])]);
    }
}
